"""Detecting malicious email delivery (Section 4.2.1).

* **Username-guessing**: a sender domain that hits one receiver domain
  with many *distinct* non-existent usernames is guessing.  The detector
  reports the candidate count, how many guesses reached real accounts, and
  the success rate (paper: 4,273 candidates, 39 hits, 0.91%).
* **Leaked-list bulk spam**: the paper's HaveIBeenPwned criterion — flag a
  sender domain when >80% of its distinct recipients appear in the breach
  corpus.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field

from repro.analysis.label import LabeledDataset
from repro.core.taxonomy import BounceDegree, BounceType
from repro.delivery.dataset import DeliveryDataset
from repro.world.breach import BreachCorpus


@dataclass
class GuessingCampaign:
    sender_domain: str
    target_domain: str
    candidates: set[str] = field(default_factory=set)
    hits: set[str] = field(default_factory=set)
    n_emails: int = 0
    n_bounced: int = 0
    n_delivered_to_hits: int = 0

    @property
    def success_rate(self) -> float:
        return len(self.hits) / len(self.candidates) if self.candidates else 0.0


def detect_guessing_campaigns(
    labeled: LabeledDataset,
    min_distinct_nonexistent: int = 15,
    min_target_share: float = 0.6,
) -> list[GuessingCampaign]:
    """Find sender domains probing usernames at a single receiver domain.

    A sender qualifies when it produced at least ``min_distinct_nonexistent``
    distinct T8-bounced usernames and at least ``min_target_share`` of its
    traffic went to one receiver domain.
    """
    # sender domain -> receiver domain -> distinct T8 usernames.  The
    # final failed attempt is the authoritative one: a guess probe may be
    # deflected by a blocklist on its first attempt and only reach the
    # "user unknown" check on a retry.
    nonexistent: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
    traffic: dict[str, Counter] = defaultdict(Counter)
    for record in labeled.dataset:
        traffic[record.sender_domain][record.receiver_domain] += 1
        if record.delivered:
            continue
        final = labeled.labeler.classify(record.final_attempt().result)
        if final is BounceType.T8:
            nonexistent[record.sender_domain][record.receiver_domain].add(
                record.receiver_user.lower()
            )

    campaigns: list[GuessingCampaign] = []
    for sender_domain, per_target in sorted(nonexistent.items()):
        sender_traffic = traffic[sender_domain]
        total = sum(sender_traffic.values())
        for target, users in sorted(per_target.items()):
            if len(users) < min_distinct_nonexistent:
                continue
            if sender_traffic[target] / total < min_target_share:
                continue
            campaign = GuessingCampaign(sender_domain=sender_domain, target_domain=target)
            campaign.candidates |= users
            campaigns.append(campaign)

    # Second pass: fill in delivered traffic (hits) for flagged campaigns.
    by_key = {(c.sender_domain, c.target_domain): c for c in campaigns}
    for record in labeled.dataset:
        campaign = by_key.get((record.sender_domain, record.receiver_domain))
        if campaign is None:
            continue
        campaign.n_emails += 1
        username = record.receiver_user.lower()
        if record.delivered:
            campaign.hits.add(username)
            campaign.candidates.add(username)
            campaign.n_delivered_to_hits += 1
        else:
            campaign.n_bounced += 1
    return campaigns


@dataclass
class BulkSpamReport:
    sender_domain: str
    n_recipients: int
    pwned_fraction: float
    n_emails: int
    n_hard: int
    n_soft: int
    #: Whether the DNSBL's domain blocklist also flags this sender
    #: (paper: 23 of 31 flagged by Spamhaus).
    spamhaus_flagged: bool = False

    @property
    def hard_fraction(self) -> float:
        return self.n_hard / self.n_emails if self.n_emails else 0.0

    @property
    def soft_fraction(self) -> float:
        return self.n_soft / self.n_emails if self.n_emails else 0.0


def detect_bulk_spammers(
    dataset: DeliveryDataset,
    breach: BreachCorpus,
    pwned_threshold: float = 0.8,
    min_recipients: int = 30,
    dnsbl=None,
    probe_time: float | None = None,
) -> list[BulkSpamReport]:
    """The paper's HaveIBeenPwned flagging criterion over sender domains."""
    recipients: dict[str, set[str]] = defaultdict(set)
    for record in dataset:
        recipients[record.sender_domain].add(record.receiver.lower())

    reports: list[BulkSpamReport] = []
    for sender_domain, addresses in sorted(recipients.items()):
        if len(addresses) < min_recipients:
            continue
        fraction = breach.pwned_fraction(sorted(addresses))
        if fraction <= pwned_threshold:
            continue
        n_emails = n_hard = n_soft = 0
        for record in dataset:
            if record.sender_domain != sender_domain:
                continue
            n_emails += 1
            degree = record.bounce_degree
            if degree is BounceDegree.HARD_BOUNCED:
                n_hard += 1
            elif degree is BounceDegree.SOFT_BOUNCED:
                n_soft += 1
        flagged = False
        if dnsbl is not None and probe_time is not None:
            flagged = dnsbl.is_domain_listed(sender_domain, probe_time)
        reports.append(
            BulkSpamReport(
                sender_domain=sender_domain,
                n_recipients=len(addresses),
                pwned_fraction=fraction,
                n_emails=n_emails,
                n_hard=n_hard,
                n_soft=n_soft,
                spamhaus_flagged=flagged,
            )
        )
    reports.sort(key=lambda r: (-r.n_emails, r.sender_domain))
    return reports


def malicious_sender_domains(labeled: LabeledDataset, breach: BreachCorpus) -> set[str]:
    """Union of senders flagged by either detector (feeds Table 2)."""
    flagged = {c.sender_domain for c in detect_guessing_campaigns(labeled)}
    flagged |= {r.sender_domain for r in detect_bulk_spammers(labeled.dataset, breach)}
    return flagged
