"""Misconfiguration-duration estimation (Section 4.3, Figure 7).

The paper estimates how long DKIM/SPF, MX, and quota errors persist *from
the bounce stream itself*: an entity's error episode runs from its first
error-bounce to its last, with episodes split at quiet gaps.  The same
estimator runs here over the labeled trace — it never reads the
simulator's ground-truth windows (tests compare against them instead).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.label import LabeledDataset
from repro.core.taxonomy import BounceType
from repro.util.clock import DAY_SECONDS, SimClock


@dataclass(frozen=True)
class ErrorEpisode:
    entity: str
    start: float
    end: float
    n_bounces: int
    #: Episode touches the window edge (duration is a lower bound).
    censored: bool

    @property
    def duration_days(self) -> float:
        return (self.end - self.start) / DAY_SECONDS


@dataclass
class DurationReport:
    episodes: list[ErrorEpisode]

    @property
    def n_entities(self) -> int:
        return len({e.entity for e in self.episodes})

    def durations_days(self) -> list[float]:
        return [e.duration_days for e in self.episodes]

    @property
    def mean_days(self) -> float:
        durations = self.durations_days()
        return sum(durations) / len(durations) if durations else 0.0

    @property
    def median_days(self) -> float:
        durations = sorted(self.durations_days())
        if not durations:
            return 0.0
        mid = len(durations) // 2
        if len(durations) % 2:
            return durations[mid]
        return (durations[mid - 1] + durations[mid]) / 2

    def fraction_over(self, days: float) -> float:
        durations = self.durations_days()
        if not durations:
            return 0.0
        return sum(1 for d in durations if d > days) / len(durations)

    def fraction_under(self, days: float) -> float:
        durations = self.durations_days()
        if not durations:
            return 0.0
        return sum(1 for d in durations if d <= days) / len(durations)

    def persistent_entities(self, clock: SimClock, slack_days: float = 14.0) -> set[str]:
        """Entities whose episode spans (almost) the whole window — the
        paper's 'consistently broken' population."""
        span = clock.n_days - slack_days
        return {e.entity for e in self.episodes if e.duration_days >= span}

    def recurrent_entities(self) -> set[str]:
        counts: dict[str, int] = defaultdict(int)
        for e in self.episodes:
            counts[e.entity] += 1
        return {entity for entity, n in counts.items() if n >= 2}

    def excluding_censored(self) -> "DurationReport":
        """Episodes fully inside the window — the population whose *fix
        time* is observable (the paper's 12-day DKIM/SPF mean excludes the
        consistently-broken domains)."""
        return DurationReport([e for e in self.episodes if not e.censored])

    def cdf(self, grid_days: list[float]) -> list[float]:
        """Duration CDF on a day grid (the Fig 7 curves)."""
        durations = sorted(self.durations_days())
        if not durations:
            return [0.0] * len(grid_days)
        out = []
        for g in grid_days:
            out.append(sum(1 for d in durations if d <= g) / len(durations))
        return out


def _episodes_from_times(
    times_by_entity: dict[str, list[float]],
    clock: SimClock,
    gap_days: float,
) -> list[ErrorEpisode]:
    episodes: list[ErrorEpisode] = []
    gap = gap_days * DAY_SECONDS
    edge = 3 * DAY_SECONDS
    for entity, times in times_by_entity.items():
        times.sort()
        start = times[0]
        last = times[0]
        count = 1
        for t in times[1:]:
            if t - last > gap:
                episodes.append(
                    ErrorEpisode(
                        entity=entity,
                        start=start,
                        end=last,
                        n_bounces=count,
                        censored=(start - clock.start_ts < edge or clock.end_ts - last < edge),
                    )
                )
                start = t
                count = 0
            last = t
            count += 1
        episodes.append(
            ErrorEpisode(
                entity=entity,
                start=start,
                end=last,
                n_bounces=count,
                censored=(start - clock.start_ts < edge or clock.end_ts - last < edge),
            )
        )
    return episodes


def _filter_singletons(episodes: list[ErrorEpisode], min_bounces: int) -> list[ErrorEpisode]:
    """Drop episodes thinner than ``min_bounces`` — isolated bounces from
    transient DNS flakiness, not sustained misconfiguration."""
    return [e for e in episodes if e.n_bounces >= min_bounces]


def _collect(
    labeled: LabeledDataset,
    bounce_type: BounceType,
    entity_of,
    min_bounces: int,
) -> dict[str, list[float]]:
    times: dict[str, list[float]] = defaultdict(list)
    for record, t in labeled.classified_records():
        if t is bounce_type:
            entity = entity_of(labeled, record)
            if entity is not None:
                times[entity].append(record.start_time)
    return {e: ts for e, ts in times.items() if len(ts) >= min_bounces}


def auth_error_durations(
    labeled: LabeledDataset, clock: SimClock, gap_days: float = 10.0, min_bounces: int = 2
) -> DurationReport:
    """DKIM/SPF fix times per *sender domain* (paper mean: ~12 days)."""
    times = _collect(
        labeled, BounceType.T3, lambda _l, r: r.sender_domain, min_bounces
    )
    episodes = _episodes_from_times(times, clock, gap_days)
    return DurationReport(_filter_singletons(episodes, min_bounces))


def mx_error_durations(
    labeled: LabeledDataset, clock: SimClock, gap_days: float = 4.0, min_bounces: int = 3
) -> DurationReport:
    """MX fix times per *receiver domain* (paper: mostly under a day).

    A *fix* is only confirmed when the domain delivers successfully again
    after the episode; episodes with no later success are censored (the
    domain may simply be dead/expired — the squatting analysis's
    territory, not a repair measurement).
    """
    times = _collect(
        labeled, BounceType.T2, lambda _l, r: r.receiver_domain, min_bounces
    )
    episodes = _episodes_from_times(times, clock, gap_days)
    episodes = _filter_singletons(episodes, min_bounces)

    last_success: dict[str, float] = {}
    for record in labeled.dataset:
        for attempt in record.attempts:
            if attempt.succeeded:
                domain = record.receiver_domain
                if attempt.t > last_success.get(domain, float("-inf")):
                    last_success[domain] = attempt.t
    confirmed = [
        e if last_success.get(e.entity, float("-inf")) > e.end
        else ErrorEpisode(
            entity=e.entity, start=e.start, end=e.end,
            n_bounces=e.n_bounces, censored=True,
        )
        for e in episodes
    ]
    return DurationReport(confirmed)


def quota_error_durations(
    labeled: LabeledDataset, clock: SimClock, gap_days: float = 40.0, min_bounces: int = 2
) -> DurationReport:
    """Full-mailbox durations per *receiver address* (paper: >51% of cases
    last ≥30 days; mean repair 86 days)."""
    times = _collect(
        labeled, BounceType.T9, lambda _l, r: r.receiver.lower(), min_bounces
    )
    episodes = _episodes_from_times(times, clock, gap_days)
    return DurationReport(_filter_singletons(episodes, min_bounces))


def inactive_durations(
    labeled: LabeledDataset, clock: SimClock, gap_days: float = 20.0, min_bounces: int = 2
) -> DurationReport:
    def entity(l: LabeledDataset, record) -> str | None:
        if l.ndr_mentions_inactive(record):
            return record.receiver.lower()
        return None

    times = _collect(labeled, BounceType.T8, entity, min_bounces)
    episodes = _episodes_from_times(times, clock, gap_days)
    return DurationReport(_filter_singletons(episodes, min_bounces))


# ---------------------------------------------------------------------------
# T3 failure-mode breakdown (Section 4.3.1)
# ---------------------------------------------------------------------------

import re as _re

_BOTH_RE = _re.compile(r"both (do not pass|failed)|spf and dkim", _re.I)
_DMARC_RE = _re.compile(r"dmarc", _re.I)


def auth_failure_breakdown(labeled: LabeledDataset) -> dict[str, int]:
    """Split T3 bounces by cited mechanism, from NDR wording alone.

    The paper: 42.09% of authentication bounces cite both DKIM and SPF,
    55.19% cite SPF-or-DKIM, and at least 2.72% cite DMARC.
    """
    out = {"both": 0, "either": 0, "dmarc": 0}
    for record, t in labeled.classified_records():
        if t is not BounceType.T3:
            continue
        failure = record.first_failure()
        text = failure.result
        if _DMARC_RE.search(text):
            out["dmarc"] += 1
        elif _BOTH_RE.search(text):
            out["both"] += 1
        else:
            out["either"] += 1
    return out
