"""Measurement analyses: every table and figure of the paper.

All analyses operate on the *observable* dataset (NDR text, attempt
traces, IPs) plus the external services the paper also used (DNS, the
registrar, the breach corpus, the DNSBL, geolocation).  Simulator ground
truth (``truth_*`` fields) is only touched by evaluation benches.

Module map (see DESIGN.md §3 for the experiment index):

* :mod:`~repro.analysis.label` — attach bounce types to records (EBRC or
  the fast rule labeler).
* :mod:`~repro.analysis.degrees` — bounce degrees, daily/monthly series
  (Fig 5).
* :mod:`~repro.analysis.rootcause` — root-cause attribution (Tables 1–2).
* :mod:`~repro.analysis.blocklist` — Spamhaus impact (Fig 6), greylisting,
  filter divergence.
* :mod:`~repro.analysis.misconfig` — error-duration estimation (Fig 7).
* :mod:`~repro.analysis.infrastructure` — timeout matrix (Fig 8), latency
  (Fig 10, Appendix C).
* :mod:`~repro.analysis.typos` — domain/username typo detection (§4.3.2).
* :mod:`~repro.analysis.squatting` — squatting risk (§5, Fig 9).
* :mod:`~repro.analysis.malicious` — attacker detection (§4.2.1).
* :mod:`~repro.analysis.rankings` — per-ESP/AS/country tables (Tables 3–5).
* :mod:`~repro.analysis.ambiguous` — ambiguous NDR templates (Table 6).
"""

from repro.analysis.label import LabeledDataset, RuleLabeler, EBRCLabeler
from repro.analysis.degrees import degree_breakdown
from repro.analysis.rootcause import attribute_root_causes
from repro.analysis.comparison import compare_to_paper, scorecard
from repro.analysis.fullreport import full_report
from repro.analysis.recommendations import build_recommendations
from repro.analysis.squatting import squatting_report

__all__ = [
    "LabeledDataset",
    "RuleLabeler",
    "EBRCLabeler",
    "degree_breakdown",
    "attribute_root_causes",
    "compare_to_paper",
    "scorecard",
    "full_report",
    "build_recommendations",
    "squatting_report",
]
