"""Root-cause attribution: Tables 1 and 2.

Table 1 is the raw type distribution over classified bounced emails.
Table 2 groups bounces into the five root causes; the grouping is not a
static type→cause map — it needs the detectors:

* T8 splits into guessing-campaign traffic (malicious), username typos
  (user error), inactive accounts (user error), and bulk-spam dead
  addresses (malicious);
* T13 splits into bulk-spam rejections (malicious) and ordinary filter
  rejections (spam blocking policy);
* T2 splits into domain typos / stale expired-domain mail (user error)
  and receiver-side MX misconfiguration (server manager).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.analysis.label import LabeledDataset
from repro.analysis.malicious import detect_bulk_spammers, detect_guessing_campaigns
from repro.analysis.typos import detect_domain_typos, detect_username_typos
from repro.core.taxonomy import BounceType, RootCause
from repro.dnssim.resolver import Resolver
from repro.world.breach import BreachCorpus


@dataclass
class RootCauseRow:
    root_cause: RootCause
    bounce_type: str
    reason: str
    count: int

    def share_of(self, total: int) -> float:
        return self.count / total if total else 0.0


@dataclass
class RootCauseReport:
    n_classified: int
    n_ambiguous: int
    type_distribution: Counter
    rows: list[RootCauseRow] = field(default_factory=list)

    def cause_totals(self) -> dict[RootCause, int]:
        totals: dict[RootCause, int] = {}
        for row in self.rows:
            totals[row.root_cause] = totals.get(row.root_cause, 0) + row.count
        return totals

    def active_protective_count(self) -> int:
        return sum(
            count for cause, count in self.cause_totals().items() if cause.is_active_protective
        )

    def passive_accidental_count(self) -> int:
        return sum(
            count
            for cause, count in self.cause_totals().items()
            if not cause.is_active_protective
        )

    def row(self, reason: str) -> RootCauseRow:
        for r in self.rows:
            if r.reason == reason:
                return r
        raise KeyError(reason)


def attribute_root_causes(
    labeled: LabeledDataset,
    breach: BreachCorpus,
    resolver: Resolver,
    probe_time: float,
) -> RootCauseReport:
    """Build the Table 2 report from a labeled dataset.

    ``resolver``/``probe_time`` drive the active DNS confirmation inside
    the domain-typo pipeline (the paper's post-hoc queries).
    """
    distribution = labeled.type_distribution()
    n_classified = sum(distribution.values())

    guess_campaigns = detect_guessing_campaigns(labeled)
    guess_keys = {(c.sender_domain, c.target_domain) for c in guess_campaigns}
    spam_reports = detect_bulk_spammers(labeled.dataset, breach)
    spam_senders = {r.sender_domain for r in spam_reports}
    typo_domain_names = {
        f.typo_domain for f in detect_domain_typos(labeled, resolver, probe_time)
    }
    typo_addresses = {f.typo_address for f in detect_username_typos(labeled)}

    counts: Counter = Counter()
    for record, bounce_type in labeled.classified_records():
        sender_domain = record.sender_domain
        receiver_domain = record.receiver_domain
        key = None
        if bounce_type is BounceType.T8:
            if (sender_domain, receiver_domain) in guess_keys:
                key = "guess"
            elif sender_domain in spam_senders:
                key = "bulk_spam"
            elif record.receiver.lower() in typo_addresses:
                key = "username_typo"
            elif labeled.ndr_mentions_inactive(record):
                key = "inactive"
            else:
                key = "unattributed_t8"
        elif bounce_type is BounceType.T13:
            key = "bulk_spam" if sender_domain in spam_senders else "spam_filter"
        elif bounce_type is BounceType.T5:
            key = "blocklist"
        elif bounce_type is BounceType.T6:
            key = "greylist"
        elif bounce_type is BounceType.T7:
            key = "too_fast"
        elif bounce_type is BounceType.T11:
            key = "too_much_email"
        elif bounce_type is BounceType.T3:
            key = "auth_failure"
        elif bounce_type is BounceType.T4:
            key = "starttls"
        elif bounce_type is BounceType.T2:
            key = "domain_typo" if receiver_domain in typo_domain_names else "mx_error"
        elif bounce_type is BounceType.T9:
            key = "mailbox_full"
        elif bounce_type is BounceType.T14:
            key = "timeout"
        if key is not None:
            counts[key] += 1

    rows = [
        RootCauseRow(RootCause.MALICIOUS_EMAIL_DELIVERY, "T8",
                     "Guess victim email addresses", counts["guess"]),
        RootCauseRow(RootCause.MALICIOUS_EMAIL_DELIVERY, "T8/T13",
                     "Delivering large amounts of spam", counts["bulk_spam"]),
        RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T5",
                     "Sender MTA listed in blocklists", counts["blocklist"]),
        RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T6",
                     "Sender MTA blocked by greylisting", counts["greylist"]),
        RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T7",
                     "Sender MTA delivers too fast", counts["too_fast"]),
        RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T13",
                     "Email detected as spam", counts["spam_filter"]),
        RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T11",
                     "User gets too much email", counts["too_much_email"]),
        RootCauseRow(RootCause.SERVER_MANAGER_MISCONFIGURATION, "T3",
                     "Sender authentication failure", counts["auth_failure"]),
        RootCauseRow(RootCause.SERVER_MANAGER_MISCONFIGURATION, "T4",
                     "Server does not support STARTTLS", counts["starttls"]),
        RootCauseRow(RootCause.SERVER_MANAGER_MISCONFIGURATION, "T2",
                     "Error MX record for receiver domain", counts["mx_error"]),
        RootCauseRow(RootCause.IMPROPER_USER_OPERATION, "T2",
                     "Receiver domain name typo", counts["domain_typo"]),
        RootCauseRow(RootCause.IMPROPER_USER_OPERATION, "T8",
                     "Receiver username typo", counts["username_typo"]),
        RootCauseRow(RootCause.IMPROPER_USER_OPERATION, "T8",
                     "Receiver email address is inactive", counts["inactive"]),
        RootCauseRow(RootCause.IMPROPER_USER_OPERATION, "T9",
                     "Receiver mailbox is full", counts["mailbox_full"]),
        RootCauseRow(RootCause.POOR_EMAIL_INFRASTRUCTURE, "T14",
                     "SMTP session timeout", counts["timeout"]),
    ]

    return RootCauseReport(
        n_classified=n_classified,
        n_ambiguous=labeled.n_ambiguous(),
        type_distribution=distribution,
        rows=rows,
    )
