"""Typo detection pipelines (Section 4.3.2).

**Domain typos** — the paper's three-step pipeline:

1. generate candidate typo domains for the top-K InEmailRank domains
   (dnstwist role → :mod:`repro.typosquat`),
2. select receiver domains from the dataset that never resolved (every
   attempt failed with a domain-lookup NDR, confirmed by an active DNS
   query),
3. intersect.

**Username typos** — the paper's similarity pipeline:

1. collect addresses the receiver MTA reported as non-existent (T8),
2. for the same sender, find successfully-delivered recipient addresses
   with >90% username similarity at the same domain,
3. verify the non-existent username is in the candidate's generated typo
   set.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.analysis.label import LabeledDataset
from repro.core.taxonomy import BounceType
from repro.dnssim.records import RecordType, ResolveStatus
from repro.dnssim.resolver import Resolver
from repro.typosquat.generate import TypoKind, classify_typo, domain_typos
from repro.util.text import similarity_ratio, split_address


@dataclass(frozen=True)
class DomainTypoFinding:
    typo_domain: str
    original_domain: str
    kind: TypoKind
    n_senders: int
    n_emails: int


def _never_resolved_domains(labeled: LabeledDataset) -> Counter:
    """Receiver domains whose every delivery failed with T2 NDRs; value is
    the email count."""
    failures: Counter = Counter()
    successes: set[str] = set()
    for record in labeled.dataset:
        if record.delivered:
            successes.add(record.receiver_domain)
    for record, bounce_type in labeled.classified_records():
        if bounce_type is BounceType.T2 and record.receiver_domain not in successes:
            failures[record.receiver_domain] += 1
    return failures


def detect_domain_typos(
    labeled: LabeledDataset,
    resolver: Resolver,
    probe_time: float,
    top_k: int = 100,
) -> list[DomainTypoFinding]:
    """The full domain-typo pipeline; ``probe_time`` is when the active
    confirmation queries run (the paper probed after the window)."""
    volume = labeled.dataset.receiver_domain_volume()
    top_domains = [
        d for d, _ in sorted(volume.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
    ]

    candidates: dict[str, tuple[str, TypoKind]] = {}
    for original in top_domains:
        for cand in domain_typos(original):
            candidates.setdefault(cand.text, (original, cand.kind))

    sender_sets: dict[str, set[str]] = defaultdict(set)
    for record in labeled.dataset:
        sender_sets[record.receiver_domain].add(record.sender)

    findings: list[DomainTypoFinding] = []
    for domain, n_emails in sorted(_never_resolved_domains(labeled).items()):
        # Active confirmation: the domain (still) does not resolve.
        result = resolver.query(domain, RecordType.A, probe_time)
        if result.status is not ResolveStatus.NXDOMAIN:
            continue
        hit = candidates.get(domain)
        if hit is None:
            continue
        original, kind = hit
        findings.append(
            DomainTypoFinding(
                typo_domain=domain,
                original_domain=original,
                kind=kind,
                n_senders=len(sender_sets[domain]),
                n_emails=n_emails,
            )
        )
    findings.sort(key=lambda f: (-f.n_emails, f.typo_domain))
    return findings


@dataclass(frozen=True)
class UsernameTypoFinding:
    typo_address: str
    candidate_address: str
    kind: TypoKind
    n_senders: int
    n_emails: int


def detect_username_typos(
    labeled: LabeledDataset,
    similarity_threshold: float = 0.9,
) -> list[UsernameTypoFinding]:
    """The paper's (non-existent, candidate) username-pair pipeline."""
    # Step 1: non-existent addresses, with their senders and counts.
    nonexistent_senders: dict[str, set[str]] = defaultdict(set)
    nonexistent_counts: Counter = Counter()
    for record, bounce_type in labeled.classified_records():
        if bounce_type is BounceType.T8 and not labeled.ndr_mentions_inactive(record):
            nonexistent_senders[record.receiver.lower()].add(record.sender)
            nonexistent_counts[record.receiver.lower()] += 1

    # Step 2: per sender, successfully-delivered recipients by domain.
    delivered: dict[tuple[str, str], set[str]] = defaultdict(set)
    for record in labeled.dataset:
        if record.delivered:
            user, domain = split_address(record.receiver)
            delivered[(record.sender, domain)].add(user.lower())

    findings: dict[str, UsernameTypoFinding] = {}
    for address, senders in nonexistent_senders.items():
        try:
            bad_user, domain = split_address(address)
        except ValueError:
            continue
        for sender in sorted(senders):
            for candidate in sorted(delivered.get((sender, domain), ())):
                if similarity_ratio(bad_user, candidate) <= similarity_threshold:
                    continue
                # Step 3: dnstwist verification.
                kind = classify_typo(bad_user, candidate)
                if kind is None:
                    continue
                findings[address] = UsernameTypoFinding(
                    typo_address=address,
                    candidate_address=f"{candidate}@{domain}",
                    kind=kind,
                    n_senders=len(senders),
                    n_emails=nonexistent_counts[address],
                )
                break
            if address in findings:
                break
    out = list(findings.values())
    out.sort(key=lambda f: (-f.n_emails, f.typo_address))
    return out


def typo_kind_distribution(findings) -> Counter:
    """Morphology shares (paper: omission > replacement > bitsquatting)."""
    return Counter(f.kind for f in findings)


def typo_addresses(findings) -> set[str]:
    return {f.typo_address for f in findings if hasattr(f, "typo_address")}


def typo_domains(findings) -> set[str]:
    return {f.typo_domain for f in findings if hasattr(f, "typo_domain")}
