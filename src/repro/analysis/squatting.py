"""Email-address squatting analysis (Section 5, Figure 9).

**Vulnerable domains**: receiver domains that (a) failed DNS resolution in
the dataset, (b) still answer NXDOMAIN to an active probe, and (c) are
available for purchase at the registrar.  Both typo domains and expired
real domains qualify; the expired ones carry residual trust (they
*historically received mail successfully*).

**Vulnerable usernames**: addresses the receiver reported non-existent
whose username the provider's registration interface reports available —
the web-UI probe is played by ``Mailbox.registrable_at`` on the top
webmail providers.

The longitudinal view (Fig 9) counts senders/emails per week that
addressed any vulnerable name.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.analysis.label import LabeledDataset
from repro.core.taxonomy import BounceType
from repro.util.clock import SimClock
from repro.world.model import WorldModel


@dataclass
class VulnerableDomain:
    domain: str
    n_senders: int
    n_emails: int
    #: The domain successfully received mail earlier in the window
    #: (expired real domain → residual trust).
    historically_received: bool
    #: Filled by the re-registration check.
    reregistered: bool = False
    registrant_changed: bool = False
    serves_mail: bool = False


@dataclass
class VulnerableUsername:
    address: str
    provider: str
    n_senders: int
    n_emails: int
    #: Historically received mail before the account vanished.
    historically_received: bool
    website_accounts: tuple[str, ...] = ()


@dataclass
class SquattingReport:
    domains: list[VulnerableDomain]
    usernames: list[VulnerableUsername]

    @property
    def n_vulnerable_domains(self) -> int:
        return len(self.domains)

    @property
    def n_vulnerable_usernames(self) -> int:
        return len(self.usernames)

    def domains_with_history(self) -> list[VulnerableDomain]:
        return [d for d in self.domains if d.historically_received]

    def reregistered_domains(self) -> list[VulnerableDomain]:
        return [d for d in self.domains if d.reregistered]

    def total_domain_emails(self) -> int:
        return sum(d.n_emails for d in self.domains)

    def total_domain_senders(self) -> int:
        return sum(d.n_senders for d in self.domains)


def identify_vulnerable_domains(
    labeled: LabeledDataset,
    world: WorldModel,
    probe_time: float,
) -> list[VulnerableDomain]:
    """Steps (a)-(c) above, plus the re-registration/WHOIS follow-up at
    ``probe_time`` + 120 days (the paper re-checked two months later;
    the synthetic world's re-registration tail is a little slower)."""
    resolver = world.resolver
    registrar = world.registrar

    # (a) receiver domains with DNS failures in the dataset.
    failed_domains: Counter = Counter()
    senders: dict[str, set[str]] = defaultdict(set)
    received_ok: set[str] = set()
    for record in labeled.dataset:
        if record.delivered:
            received_ok.add(record.receiver_domain)
    for record, bounce_type in labeled.classified_records():
        if bounce_type is BounceType.T2:
            failed_domains[record.receiver_domain] += 1
            senders[record.receiver_domain].add(record.sender)

    out: list[VulnerableDomain] = []
    recheck_time = probe_time + 120 * 86_400
    for domain, n_emails in sorted(failed_domains.items()):
        # (b) active probe: still NXDOMAIN?  (c) available for purchase?
        if not registrar.available_for_registration(domain, probe_time):
            continue
        vd = VulnerableDomain(
            domain=domain,
            n_senders=len(senders[domain]),
            n_emails=n_emails,
            historically_received=domain in received_ok,
        )
        # Follow-up: re-registered since?  Registrant changed?  Mail up?
        whois_after = registrar.whois(domain, recheck_time)
        if whois_after.registered:
            vd.reregistered = True
            vd.registrant_changed = registrar.registrant_changed(
                domain, world.clock.start_ts, recheck_time
            )
            vd.serves_mail = registrar.serves_mail(domain, recheck_time)
        out.append(vd)
    out.sort(key=lambda d: (-d.n_emails, d.domain))
    return out


#: Webmail providers whose registration UIs the paper probed.
PROBED_PROVIDERS = ("gmail.com", "hotmail.com", "yahoo.com", "outlook.com", "aol.com")


def identify_vulnerable_usernames(
    labeled: LabeledDataset,
    world: WorldModel,
    probe_time: float,
    min_incoming: int = 3,
    providers: tuple[str, ...] = PROBED_PROVIDERS,
) -> list[VulnerableUsername]:
    """The paper's username probe: take heavily-mailed T8 addresses at the
    big webmail providers and ask the registration interface whether the
    username can be (re-)registered."""
    t8_counts: Counter = Counter()
    senders: dict[str, set[str]] = defaultdict(set)
    for record, bounce_type in labeled.classified_records():
        if bounce_type is BounceType.T8 and record.receiver_domain in providers:
            address = record.receiver.lower()
            t8_counts[address] += 1
            senders[address].add(record.sender)

    delivered_ever: set[str] = set()
    for record in labeled.dataset:
        if record.delivered:
            delivered_ever.add(record.receiver.lower())

    out: list[VulnerableUsername] = []
    for address, count in sorted(t8_counts.items()):
        if count < min_incoming:
            continue
        username, provider = address.split("@", 1)
        rdomain = world.receiver_domains.get(provider)
        if rdomain is None:
            continue
        box = rdomain.mailbox(username)
        # Registration-interface probe: an address is registrable when the
        # account was deleted (box exists with deleted_at) or never existed
        # at all (provider allows fresh registration of the name).
        if box is not None:
            registrable = box.registrable_at(probe_time)
            websites = box.website_accounts if registrable else ()
            history = address in delivered_ever
        else:
            registrable = True
            websites = ()
            history = False
        if not registrable:
            continue
        out.append(
            VulnerableUsername(
                address=address,
                provider=provider,
                n_senders=len(senders[address]),
                n_emails=count,
                historically_received=history,
                website_accounts=websites,
            )
        )
    out.sort(key=lambda u: (-u.n_emails, u.address))
    return out


def squatting_report(
    labeled: LabeledDataset, world: WorldModel, probe_time: float | None = None
) -> SquattingReport:
    if probe_time is None:
        probe_time = world.clock.end_ts + 30 * 86_400
    return SquattingReport(
        domains=identify_vulnerable_domains(labeled, world, probe_time),
        usernames=identify_vulnerable_usernames(labeled, world, probe_time),
    )


@dataclass
class WeeklySeries:
    """Fig 9: vulnerable senders and emails per week."""

    weeks: list[int]
    senders: list[int]
    emails: list[int]

    @property
    def n_weeks(self) -> int:
        return len(self.weeks)


def weekly_vulnerable_series(
    labeled: LabeledDataset,
    report: SquattingReport,
    clock: SimClock,
) -> WeeklySeries:
    vulnerable_domains = {d.domain for d in report.domains}
    vulnerable_addresses = {u.address for u in report.usernames}
    n_weeks = clock.n_weeks
    senders_per_week: list[set[str]] = [set() for _ in range(n_weeks)]
    emails_per_week = [0] * n_weeks
    for record in labeled.dataset:
        vulnerable = (
            record.receiver_domain in vulnerable_domains
            or record.receiver.lower() in vulnerable_addresses
        )
        if not vulnerable:
            continue
        week = clock.week_index(record.start_time)
        if 0 <= week < n_weeks:
            senders_per_week[week].add(record.sender)
            emails_per_week[week] += 1
    return WeeklySeries(
        weeks=list(range(n_weeks)),
        senders=[len(s) for s in senders_per_week],
        emails=emails_per_week,
    )


def persistently_vulnerable_fraction(
    labeled: LabeledDataset,
    names: set[str],
    clock: SimClock,
    min_weeks: int = 36,
    by_domain: bool = True,
) -> float:
    """Fraction of vulnerable names receiving mail in ≥``min_weeks``
    distinct (not necessarily consecutive) weeks — the paper's 45.95% of
    domains / 33.79% of usernames over 36 consecutive weeks."""
    weeks_seen: dict[str, set[int]] = defaultdict(set)
    for record in labeled.dataset:
        key = record.receiver_domain if by_domain else record.receiver.lower()
        if key in names:
            weeks_seen[key].add(clock.week_index(record.start_time))
    if not names:
        return 0.0
    return sum(1 for n in names if len(weeks_seen.get(n, ())) >= min_weeks) / len(names)


def protective_registration(
    report: SquattingReport,
    world: WorldModel,
    t: float,
    top_n: int = 30,
    registrant: str = "protective-research",
) -> list[str]:
    """Section 5.2's countermeasure: register the ``top_n`` vulnerable
    domains (by email volume) so squatters cannot.  Skips domains already
    taken; returns the domains actually registered."""
    registered: list[str] = []
    for domain in report.domains[:top_n]:
        if not world.registrar.available_for_registration(domain.domain, t):
            continue
        world.registrar.register(domain.domain, t, registrant)
        registered.append(domain.domain)
    return registered
