"""Blocklist, greylisting, and spam-filter analyses (Section 4.2.2, Fig 6)."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.analysis.label import LabeledDataset
from repro.core.taxonomy import BounceType
from repro.dnsbl.service import DNSBLService
from repro.util.clock import DAY_SECONDS, SimClock


@dataclass
class SpamhausImpact:
    """Figure 6's two series plus the headline statistics."""

    #: Per day: number of proxy MTAs listed at noon.
    listed_proxies_per_day: list[int]
    #: Per day: emails whose first failure was a blocklist rejection,
    #: split by Coremail's own flag.
    blocked_normal_per_day: list[int]
    blocked_spam_per_day: list[int]

    @property
    def mean_listed_proxies(self) -> float:
        if not self.listed_proxies_per_day:
            return 0.0
        return sum(self.listed_proxies_per_day) / len(self.listed_proxies_per_day)

    @property
    def total_blocked(self) -> int:
        return sum(self.blocked_normal_per_day) + sum(self.blocked_spam_per_day)

    @property
    def normal_blocked_fraction(self) -> float:
        """The paper's damning 78.06%: blocked emails that were Normal."""
        total = self.total_blocked
        return sum(self.blocked_normal_per_day) / total if total else 0.0

    def blocked_in_range(self, day_lo: int, day_hi: int) -> float:
        """Mean daily blocked volume in [day_lo, day_hi)."""
        days = range(max(0, day_lo), min(len(self.blocked_normal_per_day), day_hi))
        if not days:
            return 0.0
        return sum(
            self.blocked_normal_per_day[d] + self.blocked_spam_per_day[d] for d in days
        ) / len(days)


def t5_daily_counts(labeled: LabeledDataset, clock: SimClock) -> tuple[list[int], list[int]]:
    """The record-side half of Fig 6: per-day first-failure-T5 volumes
    split by Coremail's own flag, as ``(normal, spam)`` series.  (The
    world-side half — the DNSBL listing series — needs the simulator's
    blocklist, not the record stream.)"""
    n_days = clock.n_days
    normal = [0] * n_days
    spam = [0] * n_days
    for record, bounce_type in labeled.classified_records():
        if bounce_type is not BounceType.T5:
            continue
        day = clock.day_index(record.start_time)
        if not 0 <= day < n_days:
            continue
        if record.email_flag == "Spam":
            spam[day] += 1
        else:
            normal[day] += 1
    return normal, spam


def spamhaus_impact(
    labeled: LabeledDataset,
    dnsbl: DNSBLService,
    proxy_ips: list[str],
    clock: SimClock,
) -> SpamhausImpact:
    n_days = clock.n_days
    listed = [
        sum(1 for ip in proxy_ips if dnsbl.is_listed(ip, clock.day_start(d) + DAY_SECONDS / 2))
        for d in range(n_days)
    ]
    normal, spam = t5_daily_counts(labeled, clock)
    return SpamhausImpact(listed, normal, spam)


def chronically_listed_proxies(
    dnsbl: DNSBLService, proxy_ips: list[str], clock: SimClock, threshold: float = 0.7
) -> list[str]:
    """Proxies listed on more than ``threshold`` of window days (paper:
    five proxies above 70%)."""
    return [
        ip for ip in proxy_ips if dnsbl.listed_fraction_of_days(ip, clock) > threshold
    ]


def blocklist_recovery_rate(labeled: LabeledDataset) -> float:
    """Of emails whose first failure was T5, the share eventually
    delivered after changing proxies (paper: 80.71%)."""
    total = recovered = 0
    for record, bounce_type in labeled.classified_records():
        if bounce_type is not BounceType.T5:
            continue
        total += 1
        if record.delivered:
            recovered += 1
    return recovered / total if total else 0.0


def greylisting_domains(labeled: LabeledDataset) -> set[str]:
    """Receiver domains that explicitly advertise greylisting in NDRs."""
    domains: set[str] = set()
    for record, bounce_type in labeled.classified_records():
        if bounce_type is BounceType.T6:
            domains.add(record.receiver_domain)
    return domains


@dataclass
class FilterDivergence:
    """Cross-ESP spam-filter disagreement (Section 4.2.2)."""

    #: Coremail said Spam; receivers accepted anyway.
    coremail_spam_receiver_accepts: int
    coremail_spam_total: int
    #: Receiver rejected as spam (T13); Coremail had flagged Normal.
    receiver_spam_coremail_normal: int
    receiver_spam_total: int

    @property
    def spam_accepted_fraction(self) -> float:
        """Paper: 46.49% of Coremail-Spam is not spam to receivers."""
        if not self.coremail_spam_total:
            return 0.0
        return self.coremail_spam_receiver_accepts / self.coremail_spam_total

    @property
    def normal_rejected_fraction(self) -> float:
        """Paper: 39.46% of receiver-rejected spam was Normal to Coremail."""
        if not self.receiver_spam_total:
            return 0.0
        return self.receiver_spam_coremail_normal / self.receiver_spam_total


def filter_divergence(labeled: LabeledDataset) -> FilterDivergence:
    coremail_spam_total = 0
    coremail_spam_accepted = 0
    receiver_spam_total = 0
    receiver_spam_normal = 0

    t13_records = {id(r) for r, t in labeled.classified_records() if t is BounceType.T13}
    for record in labeled.dataset:
        if record.email_flag == "Spam":
            coremail_spam_total += 1
            if record.delivered:
                coremail_spam_accepted += 1
        if id(record) in t13_records:
            receiver_spam_total += 1
            if record.email_flag == "Normal":
                receiver_spam_normal += 1

    return FilterDivergence(
        coremail_spam_receiver_accepts=coremail_spam_accepted,
        coremail_spam_total=coremail_spam_total,
        receiver_spam_coremail_normal=receiver_spam_normal,
        receiver_spam_total=receiver_spam_total,
    )


def dnsbl_adoption_counts(labeled: LabeledDataset, clock: SimClock) -> Counter:
    """Receiver domains first observed rejecting via the blocklist, by
    month (reveals the February-2023 adoption step of Fig 6)."""
    first_seen: dict[str, float] = {}
    for record, bounce_type in labeled.classified_records():
        if bounce_type is not BounceType.T5:
            continue
        domain = record.receiver_domain
        t = record.start_time
        if domain not in first_seen or t < first_seen[domain]:
            first_seen[domain] = t
    return Counter(clock.month_key(t) for t in first_seen.values())


def greylist_pass_delays(labeled: LabeledDataset) -> list[float]:
    """Observed delays (seconds) between a greylist deferral and the
    eventual acceptance of the same email — the latency cost greylisting
    imposes on legitimate senders."""
    delays: list[float] = []
    for record, bounce_type in labeled.classified_records():
        if bounce_type is not BounceType.T6 or not record.delivered:
            continue
        success = next(a for a in record.attempts if a.succeeded)
        delays.append(success.t - record.start_time)
    return sorted(delays)
