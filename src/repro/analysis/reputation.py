"""Outgoing-proxy reputation inference.

The paper recommends sender ESPs "monitor the reputation of outgoing
servers through various means, such as public DNSBLs, NDR messages, and
user feedback".  This analysis implements the NDR-messages channel: for
each proxy (``from_ip``) it tracks daily blocklist rejections and infers
the days the proxy was listed — without querying the DNSBL.  Tests score
the inference against the DNSBL's ground-truth listing windows.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.analysis.label import LabeledDataset, NDRLabeler, RuleLabeler
from repro.core.taxonomy import BounceType
from repro.util.clock import DAY_SECONDS, SimClock


@dataclass
class ProxyReputation:
    ip: str
    #: Per day: attempts sent / blocklist rejections observed.
    attempts_per_day: list[int]
    t5_per_day: list[int]

    def inferred_listed_days(
        self, min_attempts: int = 3, min_t5_rate: float = 0.15
    ) -> set[int]:
        """Days this proxy looked blocklisted from its own bounce stream."""
        out = set()
        for day, (n, k) in enumerate(zip(self.attempts_per_day, self.t5_per_day)):
            if n >= min_attempts and k / n >= min_t5_rate:
                out.add(day)
        return out

    @property
    def total_attempts(self) -> int:
        return sum(self.attempts_per_day)

    @property
    def total_t5(self) -> int:
        return sum(self.t5_per_day)

    @property
    def t5_rate(self) -> float:
        return self.total_t5 / self.total_attempts if self.total_attempts else 0.0


def proxy_reputations(
    labeled: LabeledDataset,
    clock: SimClock,
    labeler: NDRLabeler | None = None,
) -> dict[str, ProxyReputation]:
    """Per-proxy daily attempt/T5 series from the delivery trace.

    Works at *attempt* granularity: every attempt is attributed to the
    proxy that made it, and its result line is classified independently
    (a record's later attempts may come from different proxies).
    """
    labeler = labeler or RuleLabeler()
    n_days = clock.n_days
    attempts: dict[str, list[int]] = defaultdict(lambda: [0] * n_days)
    t5: dict[str, list[int]] = defaultdict(lambda: [0] * n_days)
    for record in labeled.dataset:
        for attempt in record.attempts:
            day = clock.day_index(attempt.t)
            if not 0 <= day < n_days:
                continue
            attempts[attempt.from_ip][day] += 1
            if not attempt.succeeded and labeler.classify(attempt.result) is BounceType.T5:
                t5[attempt.from_ip][day] += 1
    return {
        ip: ProxyReputation(ip=ip, attempts_per_day=attempts[ip], t5_per_day=t5[ip])
        for ip in attempts
    }


@dataclass
class ReputationScore:
    """Agreement between NDR-inferred listings and DNSBL ground truth."""

    precision: float
    recall: float
    n_inferred_days: int
    n_true_days: int


def score_inference(
    reputation: ProxyReputation,
    dnsbl,
    clock: SimClock,
    min_attempts: int = 3,
    min_t5_rate: float = 0.15,
) -> ReputationScore:
    inferred = reputation.inferred_listed_days(min_attempts, min_t5_rate)
    # Ground truth restricted to days with enough traffic to observe.
    observable = {
        d
        for d in range(clock.n_days)
        if reputation.attempts_per_day[d] >= min_attempts
    }
    true_days = {
        d
        for d in observable
        if dnsbl.is_listed(reputation.ip, clock.day_start(d) + DAY_SECONDS / 2)
    }
    tp = len(inferred & true_days)
    precision = tp / len(inferred) if inferred else 0.0
    recall = tp / len(true_days) if true_days else 0.0
    return ReputationScore(
        precision=precision,
        recall=recall,
        n_inferred_days=len(inferred),
        n_true_days=len(true_days),
    )
