"""Autonomous-system registry.

Table 4 of the paper breaks bounces down by receiver AS.  The named entries
below are the paper's top-10 ASes; the world model additionally allocates
generic per-country ASes for the long tail (22K ASes in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AutonomousSystem:
    number: int
    org: str
    #: Hosting share among receiver MTAs of the *named* ASes (relative).
    weight: float
    #: Primary country of the AS's mail infrastructure.
    country: str
    #: True for mail-security vendors that front many customer domains
    #: (Proofpoint, Cisco Ironport) — these show low bounce ratios in the
    #: paper because they sit in front of well-run corporate mail.
    security_vendor: bool = False

    @property
    def label(self) -> str:
        return f"AS{self.number} {self.org}"


#: The paper's Table 4 ASes, with relative receiver-volume weights shaped
#: like the reported email volumes (Microsoft ~97.7M, Google ~40.8M, ...).
AS_REGISTRY: list[AutonomousSystem] = [
    AutonomousSystem(8075, "Microsoft Corporation", 97.7, "US"),
    AutonomousSystem(15169, "Google LLC", 40.8, "US"),
    AutonomousSystem(16509, "Amazon.com, Inc.", 15.2, "US"),
    AutonomousSystem(52129, "Proofpoint, Inc.", 9.1, "US", security_vendor=True),
    AutonomousSystem(22843, "Proofpoint, Inc.", 6.9, "US", security_vendor=True),
    AutonomousSystem(26211, "Proofpoint, Inc.", 5.7, "US", security_vendor=True),
    AutonomousSystem(3462, "Data Communication Business Group", 5.4, "TW"),
    AutonomousSystem(714, "Apple Inc.", 3.8, "US"),
    AutonomousSystem(16417, "Cisco Systems Ironport Division", 3.3, "US", security_vendor=True),
    AutonomousSystem(30238, "Cisco Systems Ironport Division", 3.2, "US", security_vendor=True),
]

_BY_NUMBER = {a.number: a for a in AS_REGISTRY}

#: First AS number handed out for generic (long-tail) per-country ASes.
GENERIC_AS_BASE = 60000


def as_by_number(number: int) -> AutonomousSystem:
    return _BY_NUMBER[number]


def make_generic_as(index: int, country: str) -> AutonomousSystem:
    """Create a long-tail AS for ``country`` with a synthetic number."""
    return AutonomousSystem(
        number=GENERIC_AS_BASE + index,
        org=f"{country} Network {index}",
        weight=0.0,
        country=country,
    )
