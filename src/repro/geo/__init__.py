"""Geography substrate: countries, autonomous systems, and IP allocation.

The paper geolocates 574K receiver-MTA IPs across 169 countries and 22K
ASes via ip-api.  Here the world model carries ground-truth geography, and
:class:`~repro.geo.ipaddr.IPAllocator` plays the role of the geolocation
API: it hands out deterministic addresses tagged with country and AS, and
:class:`~repro.geo.ipaddr.GeoLookup` resolves them back.
"""

from repro.geo.countries import (
    Country,
    COUNTRIES,
    country_by_code,
    PROXY_COUNTRIES,
    FAST_INTERNET_THRESHOLD_MBPS,
)
from repro.geo.asn import AutonomousSystem, AS_REGISTRY, as_by_number
from repro.geo.ipaddr import IPAllocator, GeoLookup

__all__ = [
    "Country",
    "COUNTRIES",
    "country_by_code",
    "PROXY_COUNTRIES",
    "FAST_INTERNET_THRESHOLD_MBPS",
    "AutonomousSystem",
    "AS_REGISTRY",
    "as_by_number",
    "IPAllocator",
    "GeoLookup",
]
