"""Country registry.

Each country carries the ground-truth attributes the simulator needs:

* ``receiver_weight`` — share of receiver mail servers hosted there (the
  paper: US 28.53%, DE 10.59%, CA 5.42%, long tail over 169 countries);
* ``speed_mbps`` — national average bandwidth, used to classify fast/slow
  internet countries (threshold 25 Mbps per the FCC guide the paper cites);
* ``infra_timeout`` — baseline probability that an SMTP session to a server
  in this country times out (the paper's "poor degree of email
  infrastructure", dominated by African countries);
* ``latency_median_s`` — median successful-delivery latency to servers in
  this country (Fig 10: Singapore 5.96 s best, Cambodia 83.81 s worst);
* ``greylist_prevalence`` — fraction of the country's receiver domains that
  deploy greylisting (drives the Table 5 soft-bounce ranking, e.g.
  Montenegro at 96.6% T6).

The registry is not the full ISO table; it covers every country named in
the paper's tables/figures plus enough filler to exercise the 169-country
breadth of the dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

FAST_INTERNET_THRESHOLD_MBPS = 25.0

#: Countries hosting Coremail's 34 proxy MTAs (six countries/regions).
PROXY_COUNTRIES = ("US", "HK", "DE", "SG", "GB", "IN")


@dataclass(frozen=True)
class Country:
    code: str
    name: str
    continent: str
    receiver_weight: float
    speed_mbps: float
    infra_timeout: float
    latency_median_s: float
    greylist_prevalence: float = 0.0065

    @property
    def fast_internet(self) -> bool:
        return self.speed_mbps >= FAST_INTERNET_THRESHOLD_MBPS


def _c(
    code: str,
    name: str,
    continent: str,
    weight: float,
    mbps: float,
    timeout: float,
    latency: float,
    greylist: float = 0.0065,
) -> Country:
    return Country(code, name, continent, weight, mbps, timeout, latency, greylist)


COUNTRIES: list[Country] = [
    # -- majors ------------------------------------------------------------
    _c("US", "United States", "North America", 28.53, 200.0, 0.010, 9.5),
    _c("DE", "Germany", "Europe", 10.59, 90.0, 0.012, 10.2),
    _c("CA", "Canada", "North America", 5.42, 150.0, 0.011, 10.8),
    _c("GB", "United Kingdom", "Europe", 4.10, 110.0, 0.012, 10.5),
    _c("FR", "France", "Europe", 3.20, 120.0, 0.013, 11.0),
    _c("NL", "Netherlands", "Europe", 2.80, 160.0, 0.010, 9.8),
    _c("JP", "Japan", "Asia", 2.60, 140.0, 0.012, 11.5),
    _c("AU", "Australia", "Oceania", 2.10, 60.0, 0.016, 14.0),
    _c("SG", "Singapore", "Asia", 1.90, 250.0, 0.008, 5.96),
    _c("HK", "Hong Kong", "Asia", 1.80, 230.0, 0.009, 7.2),
    _c("KR", "South Korea", "Asia", 1.60, 180.0, 0.010, 10.1),
    _c("IN", "India", "Asia", 1.90, 48.0, 0.030, 18.5),
    _c("BR", "Brazil", "South America", 1.70, 80.0, 0.028, 21.0),
    _c("IT", "Italy", "Europe", 1.60, 70.0, 0.016, 12.6),
    _c("ES", "Spain", "Europe", 1.50, 100.0, 0.014, 11.9),
    _c("CH", "Switzerland", "Europe", 1.20, 130.0, 0.010, 10.0),
    _c("SE", "Sweden", "Europe", 1.00, 150.0, 0.010, 9.9),
    _c("RU", "Russia", "Europe", 1.40, 55.0, 0.030, 17.8),
    _c("CN", "China", "Asia", 1.30, 110.0, 0.020, 15.2),
    _c("TW", "Taiwan", "Asia", 1.10, 135.0, 0.012, 10.9),
    _c("PL", "Poland", "Europe", 0.90, 85.0, 0.015, 12.1),
    _c("MX", "Mexico", "North America", 0.80, 45.0, 0.030, 22.4),
    _c("TR", "Turkey", "Asia", 0.70, 35.0, 0.035, 24.0),
    _c("AE", "United Arab Emirates", "Asia", 0.60, 120.0, 0.015, 13.3),
    _c("ZA", "South Africa", "Africa", 0.55, 40.0, 0.075, 29.0),
    _c("AR", "Argentina", "South America", 0.50, 50.0, 0.030, 23.7),
    _c("TH", "Thailand", "Asia", 0.50, 130.0, 0.020, 16.0),
    _c("MY", "Malaysia", "Asia", 0.50, 90.0, 0.020, 15.0),
    _c("ID", "Indonesia", "Asia", 0.55, 25.0, 0.040, 26.0),
    _c("VN", "Vietnam", "Asia", 0.45, 60.0, 0.030, 21.0),
    _c("PH", "Philippines", "Asia", 0.40, 55.0, 0.035, 23.0),
    _c("IL", "Israel", "Asia", 0.40, 110.0, 0.014, 12.2),
    _c("BE", "Belgium", "Europe", 0.45, 95.0, 0.012, 10.7),
    _c("AT", "Austria", "Europe", 0.40, 85.0, 0.012, 10.9),
    _c("DK", "Denmark", "Europe", 0.35, 160.0, 0.010, 9.7),
    _c("NO", "Norway", "Europe", 0.35, 140.0, 0.010, 10.0),
    _c("FI", "Finland", "Europe", 0.35, 120.0, 0.010, 10.2),
    _c("IE", "Ireland", "Europe", 0.35, 100.0, 0.011, 10.4),
    _c("PT", "Portugal", "Europe", 0.30, 105.0, 0.013, 11.5),
    _c("CZ", "Czechia", "Europe", 0.30, 70.0, 0.014, 12.0),
    _c("GR", "Greece", "Europe", 0.25, 40.0, 0.022, 16.4),
    _c("HU", "Hungary", "Europe", 0.25, 90.0, 0.014, 12.2),
    _c("UA", "Ukraine", "Europe", 0.25, 50.0, 0.035, 19.5),
    _c("SA", "Saudi Arabia", "Asia", 0.30, 90.0, 0.020, 16.1),
    _c("NZ", "New Zealand", "Oceania", 0.30, 95.0, 0.014, 13.8),
    _c("CL", "Chile", "South America", 0.25, 150.0, 0.035, 76.29),
    _c("CO", "Colombia", "South America", 0.25, 60.0, 0.030, 24.5),
    _c("PE", "Peru", "South America", 0.20, 45.0, 0.035, 27.0),
    # -- Table 5 hard-bounce countries --------------------------------------
    _c("VE", "Venezuela", "South America", 0.020, 15.0, 0.120, 38.0),
    _c("TJ", "Tajikistan", "Asia", 0.012, 12.0, 0.090, 34.0, greylist=0.30),
    _c("BZ", "Belize", "North America", 0.004, 18.0, 0.190, 41.0),
    _c("QA", "Qatar", "Asia", 0.180, 120.0, 0.020, 14.9),
    _c("RO", "Romania", "Europe", 0.200, 130.0, 0.030, 13.5),
    _c("KG", "Kyrgyzstan", "Asia", 0.015, 20.0, 0.095, 31.0),
    _c("LV", "Latvia", "Europe", 0.090, 95.0, 0.016, 12.4),
    _c("IR", "Iran", "Asia", 0.350, 22.0, 0.050, 27.5),
    _c("MM", "Myanmar", "Asia", 0.050, 14.0, 0.060, 30.5),
    # -- Table 5 soft-bounce / greylisting-heavy countries -------------------
    _c("ME", "Montenegro", "Europe", 0.004, 45.0, 0.040, 18.0, greylist=0.65),
    _c("ZW", "Zimbabwe", "Africa", 0.006, 10.0, 0.110, 36.0, greylist=0.45),
    _c("MG", "Madagascar", "Africa", 0.009, 12.0, 0.100, 35.0, greylist=0.45),
    _c("BN", "Brunei", "Asia", 0.004, 60.0, 0.035, 19.0, greylist=0.55),
    _c("SK", "Slovakia", "Europe", 0.085, 75.0, 0.120, 15.5),
    # -- Fig 8 poor-infrastructure countries ---------------------------------
    _c("NA", "Namibia", "Africa", 0.006, 11.0, 0.230, 44.0),
    _c("RW", "Rwanda", "Africa", 0.005, 9.0, 0.180, 42.0),
    _c("SV", "El Salvador", "North America", 0.006, 17.0, 0.175, 39.0),
    _c("DO", "Dominican Republic", "North America", 0.015, 22.0, 0.140, 33.0),
    _c("NP", "Nepal", "Asia", 0.012, 18.0, 0.130, 34.5),
    _c("SY", "Syria", "Asia", 0.010, 7.0, 0.125, 40.0),
    _c("KE", "Kenya", "Africa", 0.020, 15.0, 0.120, 32.0),
    _c("PS", "Palestine", "Asia", 0.008, 16.0, 0.118, 33.5),
    _c("EG", "Egypt", "Africa", 0.050, 25.0, 0.110, 30.0),
    _c("LI", "Liechtenstein", "Europe", 0.004, 85.0, 0.105, 20.0),
    _c("NG", "Nigeria", "Africa", 0.030, 12.0, 0.100, 31.5),
    _c("MA", "Morocco", "Africa", 0.025, 20.0, 0.092, 28.5),
    _c("CI", "Cote d'Ivoire", "Africa", 0.008, 13.0, 0.088, 30.0),
    _c("GE", "Georgia", "Asia", 0.012, 28.0, 0.082, 26.0),
    _c("PR", "Puerto Rico", "North America", 0.010, 70.0, 0.080, 22.0),
    _c("MN", "Mongolia", "Asia", 0.008, 24.0, 0.078, 27.5),
    # -- Fig 10 high-latency countries ---------------------------------------
    _c("KH", "Cambodia", "Asia", 0.012, 21.0, 0.070, 83.81),
    _c("TZ", "Tanzania", "Africa", 0.010, 11.0, 0.090, 77.49),
    _c("GL", "Greenland", "North America", 0.003, 30.0, 0.060, 66.85),
    _c("AO", "Angola", "Africa", 0.008, 9.0, 0.095, 64.92),
    _c("BO", "Bolivia", "South America", 0.008, 16.0, 0.080, 58.0),
    # -- long-tail coverage (the dataset spans 169 countries/regions) --------
    _c("AD", "Andorra", "Europe", 0.002, 60.0, 0.030, 18.0),
    _c("LT", "Lithuania", "Europe", 0.060, 90.0, 0.014, 12.0),
    _c("EE", "Estonia", "Europe", 0.050, 95.0, 0.012, 11.2),
    _c("SI", "Slovenia", "Europe", 0.045, 80.0, 0.014, 12.1),
    _c("HR", "Croatia", "Europe", 0.045, 60.0, 0.018, 13.4),
    _c("BG", "Bulgaria", "Europe", 0.060, 70.0, 0.020, 13.9),
    _c("RS", "Serbia", "Europe", 0.040, 55.0, 0.024, 15.0),
    _c("BA", "Bosnia", "Europe", 0.015, 35.0, 0.035, 18.5),
    _c("AL", "Albania", "Europe", 0.012, 30.0, 0.040, 19.8),
    _c("MK", "North Macedonia", "Europe", 0.010, 35.0, 0.038, 19.0),
    _c("MD", "Moldova", "Europe", 0.012, 40.0, 0.035, 18.2),
    _c("BY", "Belarus", "Europe", 0.030, 45.0, 0.030, 16.9),
    _c("IS", "Iceland", "Europe", 0.010, 150.0, 0.010, 11.0),
    _c("LU", "Luxembourg", "Europe", 0.020, 140.0, 0.010, 10.3),
    _c("MT", "Malta", "Europe", 0.010, 85.0, 0.014, 12.6),
    _c("CY", "Cyprus", "Europe", 0.015, 60.0, 0.018, 13.8),
    _c("KZ", "Kazakhstan", "Asia", 0.030, 35.0, 0.040, 20.5),
    _c("UZ", "Uzbekistan", "Asia", 0.015, 25.0, 0.055, 24.0),
    _c("AM", "Armenia", "Asia", 0.012, 30.0, 0.045, 21.5),
    _c("AZ", "Azerbaijan", "Asia", 0.015, 28.0, 0.045, 21.0),
    _c("LK", "Sri Lanka", "Asia", 0.020, 22.0, 0.055, 25.0),
    _c("BD", "Bangladesh", "Asia", 0.030, 20.0, 0.050, 26.5),
    _c("PK", "Pakistan", "Asia", 0.040, 18.0, 0.050, 27.0),
    _c("JO", "Jordan", "Asia", 0.020, 40.0, 0.030, 18.0),
    _c("LB", "Lebanon", "Asia", 0.015, 15.0, 0.055, 28.0),
    _c("KW", "Kuwait", "Asia", 0.025, 90.0, 0.018, 14.5),
    _c("BH", "Bahrain", "Asia", 0.015, 85.0, 0.018, 14.2),
    _c("OM", "Oman", "Asia", 0.018, 60.0, 0.025, 16.8),
    _c("IQ", "Iraq", "Asia", 0.015, 14.0, 0.055, 29.5),
    _c("LA", "Laos", "Asia", 0.006, 18.0, 0.052, 28.0),
    _c("MO", "Macao", "Asia", 0.010, 150.0, 0.012, 9.8),
    _c("GH", "Ghana", "Africa", 0.015, 16.0, 0.055, 29.0),
    _c("SN", "Senegal", "Africa", 0.010, 15.0, 0.055, 29.5),
    _c("CM", "Cameroon", "Africa", 0.010, 10.0, 0.060, 33.0),
    _c("UG", "Uganda", "Africa", 0.008, 11.0, 0.060, 32.5),
    _c("ET", "Ethiopia", "Africa", 0.010, 8.0, 0.062, 36.0),
    _c("DZ", "Algeria", "Africa", 0.018, 14.0, 0.055, 28.5),
    _c("TN", "Tunisia", "Africa", 0.015, 18.0, 0.070, 26.0),
    _c("MZ", "Mozambique", "Africa", 0.006, 9.0, 0.060, 35.5),
    _c("ZM", "Zambia", "Africa", 0.006, 10.0, 0.058, 34.0),
    _c("BW", "Botswana", "Africa", 0.006, 20.0, 0.080, 28.0),
    _c("MU", "Mauritius", "Africa", 0.008, 40.0, 0.040, 19.5),
    _c("CR", "Costa Rica", "North America", 0.020, 50.0, 0.030, 17.5),
    _c("PA", "Panama", "North America", 0.018, 60.0, 0.028, 16.8),
    _c("GT", "Guatemala", "North America", 0.012, 25.0, 0.050, 22.5),
    _c("HN", "Honduras", "North America", 0.008, 18.0, 0.050, 26.0),
    _c("NI", "Nicaragua", "North America", 0.006, 15.0, 0.052, 27.0),
    _c("JM", "Jamaica", "North America", 0.008, 30.0, 0.045, 21.0),
    _c("TT", "Trinidad", "North America", 0.008, 55.0, 0.030, 17.0),
    _c("EC", "Ecuador", "South America", 0.015, 40.0, 0.038, 20.0),
    _c("UY", "Uruguay", "South America", 0.015, 80.0, 0.022, 15.0),
    _c("PY", "Paraguay", "South America", 0.008, 30.0, 0.045, 22.0),
    _c("FJ", "Fiji", "Oceania", 0.004, 25.0, 0.050, 24.0),
    _c("PG", "Papua New Guinea", "Oceania", 0.004, 9.0, 0.064, 36.5),
]

_BY_CODE = {c.code: c for c in COUNTRIES}

if len(_BY_CODE) != len(COUNTRIES):  # pragma: no cover - registry sanity
    raise RuntimeError("duplicate country code in registry")


def country_by_code(code: str) -> Country:
    """Look up a country; raises ``KeyError`` for unknown codes."""
    return _BY_CODE[code]


def all_codes() -> list[str]:
    return [c.code for c in COUNTRIES]


def total_receiver_weight() -> float:
    return sum(c.receiver_weight for c in COUNTRIES)
