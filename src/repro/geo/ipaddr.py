"""Deterministic IP allocation and reverse geolocation.

:class:`IPAllocator` hands out unique IPv4 addresses tagged with a country
and AS.  :class:`GeoLookup` is the stand-in for the ip-api geolocation
service the paper uses: given an address it returns the (ground-truth)
country and AS it was allocated under.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.asn import AutonomousSystem


@dataclass(frozen=True)
class IPInfo:
    address: str
    country: str
    asn: AutonomousSystem


class IPAllocator:
    """Allocates unique synthetic IPv4 addresses.

    Addresses are carved from 10.0.0.0/8-style sequential space; uniqueness
    and determinism matter, realism of the literal octets does not.
    """

    def __init__(self) -> None:
        self._next = 1
        self._by_address: dict[str, IPInfo] = {}

    def allocate(self, country: str, asn: AutonomousSystem) -> str:
        value = self._next
        self._next += 1
        if value >= (1 << 24):
            raise RuntimeError("IP space exhausted (16M addresses)")
        address = f"10.{(value >> 16) & 0xFF}.{(value >> 8) & 0xFF}.{value & 0xFF}"
        self._by_address[address] = IPInfo(address, country, asn)
        return address

    def info(self, address: str) -> IPInfo:
        return self._by_address[address]

    def __len__(self) -> int:
        return len(self._by_address)


class GeoLookup:
    """ip-api facade: resolves an allocated address to country / AS."""

    def __init__(self, allocator: IPAllocator) -> None:
        self._allocator = allocator

    def country(self, address: str) -> str:
        return self._allocator.info(address).country

    def asn(self, address: str) -> AutonomousSystem:
        return self._allocator.info(address).asn

    def lookup(self, address: str) -> IPInfo:
        return self._allocator.info(address)
