"""Command-line interface.

Subcommands:

* ``simulate`` — run a simulation and write the delivery log as JSONL
  (the paper's Figure 3 record format).
* ``stream``   — streaming simulate: records go straight into rotating
  JSONL shards with a checksummed manifest (bounded memory).
* ``recover``  — salvage a shard directory left behind by a crashed
  producer (truncate torn tails, re-hash, rebuild the manifest).
* ``watch``    — replay a saved log (file or shard dir) through the
  online EBRC and the sliding-window deliverability monitors.
* ``report``   — paper tables over a saved log, shard directories
  (``--shards``, optionally fanned across ``--workers``), or NDJSON
  records on stdin (``-``) — all through the streaming accumulator
  suite (docs/ANALYTICS.md); ``--batch`` runs the in-memory oracle.
* ``classify`` — classify NDR lines with an EBRC trained on a saved log
  or loaded from a saved artifact; ``-`` reads lines from stdin.
* ``fit``      — train an EBRC on a saved log and save the artifact
  (the model file ``repro serve`` loads and hot-reloads).
* ``serve``    — long-running classify/monitor HTTP daemon with
  backpressure, hot model reload, and graceful drain (docs/SERVING.md).
* ``loadtest`` — closed-loop load generator against a running daemon;
  verifies responses against serial classification and writes
  ``BENCH_serve.json``.
* ``explain``  — reconstruct the SMTP dialogue behind one email's attempts.
* ``trace``    — reconstruct delivery span trees from a saved log.
* ``metrics``  — run with telemetry on and render the metrics, or
  re-render a saved JSON snapshot.
* ``squat``    — run the squatting audit on a fresh simulation.
* ``branch``   — apply declared what-if interventions to a saved
  checkpoint and write the branched checkpoint with lineage
  (docs/CHECKPOINTS.md; ``--list-interventions`` for the catalog).
* ``diff-runs`` — per-bounce-type/per-table deltas between two delivery
  logs, rendered through the streaming analytics suite.
* ``version``  — print the package version (also ``--version``).

``simulate`` also does temporal segmentation: ``--until DAY`` stops at
a day boundary, ``--save-checkpoint DIR`` captures the complete
simulation state there, and ``--from-checkpoint DIR`` resumes it —
chained segments are byte-identical to one uninterrupted run at any
worker count.

Output conventions: *data* (tables, JSONL, traces, metric expositions)
goes to stdout; progress and status chatter goes to stderr, and
``--quiet`` silences it.  Telemetry flags (``--metrics-out``,
``--trace-sample``) turn collection on for that invocation only; the
simulation output stays byte-identical either way.

Entry point: ``repro`` / ``repro-bounce`` (or ``python -m repro.cli``).
"""

from __future__ import annotations

import argparse
import sys

from repro import SimulationConfig, __version__, run_simulation
from repro.analysis.degrees import degree_breakdown
from repro.analysis.label import EBRCLabeler, LabeledDataset, RuleLabeler
from repro.analysis.report import pct, render_table
from repro.delivery.dataset import DeliveryDataset
from repro.smtp.session import transcript_for_attempt

#: Set per-invocation by :func:`main`; silences :func:`_status` output.
_QUIET = False


def _status(message: str = "") -> None:
    """Progress/status chatter: stderr, suppressed by ``--quiet``."""
    if not _QUIET:
        print(message, file=sys.stderr)


def _add_quiet(parser: argparse.ArgumentParser) -> None:
    # SUPPRESS keeps the top-level --quiet value when the subcommand-level
    # flag is absent (both write the same dest).
    parser.add_argument("-q", "--quiet", action="store_true",
                        default=argparse.SUPPRESS,
                        help="suppress progress/status output")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--metrics-out", default=None, metavar="PATH",
                        help="collect telemetry and write metrics to PATH "
                             "('-' = stdout)")
    parser.add_argument("--metrics-format", choices=("prometheus", "json"),
                        default="prometheus")
    parser.add_argument("--trace-sample", type=int, default=0, metavar="N",
                        help="trace every Nth email (0 = tracing off)")
    parser.add_argument("--trace-out", default="traces.jsonl", metavar="PATH",
                        help="where traced span trees go, as JSONL "
                             "('-' = stdout)")
    parser.add_argument("--trace-capacity", type=int, default=256,
                        help="ring-buffer size for kept traces")


def _add_cache_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the fast-path caches (repro.core.fastpath); output "
             "is byte-identical either way — this exists for verification "
             "and benchmarking")
    parser.add_argument(
        "--no-columnar", action="store_true",
        help="deliver email-by-email instead of through the columnar "
             "batch engine (repro.delivery.columnar); output is "
             "byte-identical either way — this exists so the batch "
             "engine can be diffed independently of the caches "
             "(--no-cache implies reference delivery already)")


def _add_workers(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="run the simulation across N worker processes; output is "
             "byte-identical to a single-process run for every N "
             "(1 = in-process, the default)")
    parser.add_argument(
        "--resume", action="store_true",
        help="keep per-slice shards in a persistent <output>.slices "
             "directory and reuse verified-complete slices from a "
             "previous (killed) run; output stays byte-identical to an "
             "uninterrupted run")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bounce",
        description="Bounce-in-the-Wild reproduction toolkit",
    )
    parser.add_argument("--version", action="version",
                        version=f"%(prog)s {__version__}")
    parser.add_argument("-q", "--quiet", action="store_true", default=False,
                        help="suppress progress/status output")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run a simulation, write JSONL")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", default="delivery_log.jsonl")
    p.add_argument("--until", type=int, default=None, metavar="DAY",
                   help="stop at this day boundary (records with t < day "
                        "DAY only); combine with --save-checkpoint to "
                        "resume later")
    p.add_argument("--from-checkpoint", default=None, metavar="DIR",
                   dest="from_checkpoint",
                   help="resume simulated time from a checkpoint directory "
                        "(--scale/--seed are taken from it)")
    p.add_argument("--save-checkpoint", default=None, metavar="DIR",
                   dest="save_checkpoint",
                   help="save the end-of-run state as a checkpoint")
    _add_workers(p)
    _add_cache_flag(p)
    _add_obs_flags(p)
    _add_quiet(p)

    p = sub.add_parser("stream", help="streaming simulate -> sharded JSONL")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out-dir", default="delivery_shards")
    p.add_argument("--shard-size", type=int, default=50_000,
                   help="records per shard before rotation")
    p.add_argument("--gzip", action="store_true", help="compress shards")
    _add_workers(p)
    p.add_argument("--progress-every", type=int, default=10_000,
                   help="print progress every N records (0 = quiet)")
    _add_cache_flag(p)
    _add_obs_flags(p)
    _add_quiet(p)

    p = sub.add_parser("recover", help="salvage a shard directory whose "
                                       "producer crashed mid-write")
    p.add_argument("directory", help="shard directory to salvage")
    p.add_argument("--finalize", action="store_true",
                   help="write a final manifest for the salvaged shards "
                        "(default: record them in manifest.partial.json, "
                        "keeping the directory detectably incomplete)")
    _add_quiet(p)

    p = sub.add_parser("watch", help="replay a log through the online "
                                     "EBRC + deliverability monitors")
    p.add_argument("log", help="delivery log: JSONL file or shard directory")
    p.add_argument("--labeler", choices=("online-ebrc", "rules"),
                   default="online-ebrc")
    p.add_argument("--warmup", type=int, default=2000,
                   help="NDR lines buffered before the first EBRC fit")
    p.add_argument("--window-hours", type=float, default=48.0,
                   help="sliding-window span for rate/type monitors")
    p.add_argument("--bounce-rate-threshold", type=float, default=0.35)
    p.add_argument("--max-alerts", type=int, default=0,
                   help="stop after N alerts (0 = no limit)")
    p.add_argument("--report-every", type=int, default=0, metavar="N",
                   help="print the live paper tables every N replayed "
                        "records (0 = off); the final print matches "
                        "`repro report` over the same log")
    p.add_argument("--report-top", type=int, default=10, metavar="K",
                   help="rows per ranking table in --report-every output")
    _add_obs_flags(p)
    _add_quiet(p)

    p = sub.add_parser("metrics", help="run with telemetry on and render "
                                       "metrics, or re-render a snapshot")
    p.add_argument("snapshot", nargs="?", default=None,
                   help="saved JSON snapshot to re-render (default: run a "
                        "fresh streaming simulation with telemetry on)")
    p.add_argument("--format", choices=("prometheus", "json"),
                   default="prometheus")
    p.add_argument("--out", default="-", help="output path ('-' = stdout)")
    p.add_argument("--scale", type=float, default=0.01)
    p.add_argument("--seed", type=int, default=7)
    _add_quiet(p)

    p = sub.add_parser("trace", help="reconstruct delivery span trees "
                                     "from a saved log")
    p.add_argument("log", help="delivery log: JSONL file or shard directory")
    p.add_argument("--message-id", default=None,
                   help="show the span tree of this message id")
    p.add_argument("--index", type=int, default=None,
                   help="show the span tree of the Nth record")
    p.add_argument("--list", type=int, default=0, dest="list_n", metavar="N",
                   help="list the first N message ids instead")
    p.add_argument("--json", action="store_true",
                   help="emit span trees as JSON instead of rendered text")
    _add_quiet(p)

    p = sub.add_parser("report", help="paper tables over a saved delivery "
                                      "log (streaming accumulators)")
    p.add_argument("dataset", nargs="?", default=None,
                   help="delivery log: JSONL file, shard directory, or '-' "
                        "(NDJSON records on stdin)")
    p.add_argument("--shards", action="append", default=[], metavar="DIR",
                   help="stream a shard directory instead of a dataset "
                        "(repeatable; directories merge in order)")
    p.add_argument("--workers", type=int, default=1, metavar="N",
                   help="with --shards: fold shards across N processes and "
                        "merge the partial suites; output is byte-identical "
                        "for every N")
    p.add_argument("--batch", action="store_true",
                   help="compute with the in-memory batch oracle instead of "
                        "the streaming suite; output is byte-identical — "
                        "this exists for verification")
    p.add_argument("--labeler", choices=("rules", "ebrc"), default="rules",
                   help="'ebrc' trains on the dataset's NDRs and implies "
                        "--batch (the streaming suite labels with rules)")
    p.add_argument("--top", type=int, default=10)
    _add_quiet(p)

    p = sub.add_parser("classify", help="classify NDR lines (EBRC)")
    p.add_argument("dataset", nargs="?", default=None,
                   help="training corpus (saved delivery log); optional "
                        "with --artifact")
    p.add_argument("lines", nargs="?", default=None,
                   help="file of NDR lines to classify, '-' = stdin")
    p.add_argument("--artifact", default=None, metavar="PATH",
                   help="load a saved EBRC artifact (repro fit / EBRC.save) "
                        "instead of training on the dataset")
    p.add_argument("--message", action="append", default=[],
                   help="NDR line to classify (repeatable); stdin otherwise")
    _add_quiet(p)

    p = sub.add_parser("fit", help="train an EBRC on a saved delivery log "
                                   "and save the artifact")
    p.add_argument("dataset", help="delivery log: JSONL file or shard directory")
    p.add_argument("--out", default="ebrc.json",
                   help="where the artifact goes (repro serve loads this)")
    _add_quiet(p)

    p = sub.add_parser("serve", help="long-running classify/monitor daemon "
                                     "(docs/SERVING.md)")
    p.add_argument("--artifact", required=True, metavar="PATH",
                   help="saved EBRC artifact to serve (hot-reloaded on change)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8321,
                   help="listen port (0 = ephemeral; see --port-file)")
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="write the bound port here once listening")
    p.add_argument("--max-inflight", type=int, default=8,
                   help="requests executing at once before queueing")
    p.add_argument("--max-queue", type=int, default=32,
                   help="bounded request queue depth (429 beyond this)")
    p.add_argument("--max-wait-ms", type=float, default=500.0,
                   help="longest a queued request waits before 429")
    p.add_argument("--reload-interval", type=float, default=2.0, metavar="S",
                   help="artifact poll interval for hot reload (0 = off)")
    p.add_argument("--trace-sample", type=int, default=0, metavar="N",
                   help="keep a span tree for every Nth observed record")
    p.add_argument("--trace-capacity", type=int, default=256,
                   help="ring-buffer size for kept traces (GET /traces)")
    p.add_argument("--snapshot-out", default=None, metavar="PATH",
                   help="write a final metrics snapshot (JSON) on drain")
    _add_quiet(p)

    p = sub.add_parser("loadtest", help="closed-loop load harness against a "
                                        "running repro serve")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=None)
    p.add_argument("--port-file", default=None, metavar="PATH",
                   help="read the daemon's port from this file instead")
    p.add_argument("--artifact", required=True, metavar="PATH",
                   help="the SAME artifact the daemon serves — the serial "
                        "oracle every response is verified against")
    p.add_argument("--requests", type=int, default=2000)
    p.add_argument("--concurrency", type=int, default=8)
    p.add_argument("--batch", type=int, default=1,
                   help="messages per request (1 = POST /classify, "
                        ">1 = POST /classify_many)")
    p.add_argument("--corpus-scale", type=float, default=0.01,
                   help="simulation scale the NDR corpus is synthesized at")
    p.add_argument("--corpus-seed", type=int, default=7)
    p.add_argument("--retry-cap", type=float, default=1.0, metavar="S",
                   help="cap on honoured Retry-After sleeps")
    p.add_argument("--out", default="BENCH_serve.json",
                   help="bench artifact path ('-' = skip)")
    _add_quiet(p)

    p = sub.add_parser("explain", help="show the SMTP dialogue of one email")
    p.add_argument("dataset")
    p.add_argument("--index", type=int, default=None,
                   help="record index (default: first bounced record)")
    _add_quiet(p)

    p = sub.add_parser("squat", help="squatting audit on a fresh simulation")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)
    _add_quiet(p)

    p = sub.add_parser("recommend", help="postmaster recommendations (§6.2)")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)
    _add_quiet(p)

    p = sub.add_parser("world-info", help="summarise the synthetic world")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)
    _add_quiet(p)

    p = sub.add_parser("compare", help="paper-vs-measured scorecard")
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument("--seed", type=int, default=7)
    _add_quiet(p)

    p = sub.add_parser("full-report", help="run every analysis on a fresh simulation")
    p.add_argument("--scale", type=float, default=0.12)
    p.add_argument("--seed", type=int, default=7)
    _add_quiet(p)

    p = sub.add_parser("branch", help="apply what-if interventions to a "
                                      "saved checkpoint")
    p.add_argument("checkpoint", nargs="?", default=None,
                   help="source checkpoint directory")
    p.add_argument("out", nargs="?", default=None,
                   help="destination checkpoint directory")
    p.add_argument("--apply", action="append", default=[],
                   metavar="NAME[:ARG]",
                   help="intervention spec (repeatable); see "
                        "--list-interventions")
    p.add_argument("--list-interventions", action="store_true",
                   help="print the intervention catalog and exit")
    p.add_argument("--no-verify", action="store_true",
                   help="skip the deep state-digest check on load")
    _add_quiet(p)

    p = sub.add_parser("diff-runs", help="per-table deltas between two "
                                         "delivery logs")
    p.add_argument("run_a", help="baseline log (JSONL file or shard dir)")
    p.add_argument("run_b", help="branch log (JSONL file or shard dir)")
    p.add_argument("--top", type=int, default=10,
                   help="receiver domains per side in the domain table")
    p.add_argument("--label-a", default="baseline")
    p.add_argument("--label-b", default="branch")
    p.add_argument("--json", action="store_true",
                   help="emit the structured diff as JSON instead of tables")
    _add_quiet(p)

    p = sub.add_parser("scenario", help="list, render, or run the scenario "
                                        "packs (repro.scenario)")
    p.add_argument("action", choices=("list", "show", "run"),
                   help="list packs, show a pack's compiled ops, or run one")
    p.add_argument("pack", nargs="?", default=None,
                   help="pack name (see `repro scenario list`)")
    p.add_argument("--scale", type=float, default=None,
                   help="override the pack's pinned scale")
    p.add_argument("--seed", type=int, default=None,
                   help="override the pack's pinned seed")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the delivery log as JSONL (default: "
                        "<pack>.jsonl; '-' = don't write)")
    p.add_argument("--no-report", action="store_true",
                   help="skip the recovery analysis report")
    _add_workers(p)
    _add_cache_flag(p)
    _add_quiet(p)

    sub.add_parser("version", help="print the package version")
    return parser


def _cmd_simulate(args) -> int:
    if args.until is not None or args.from_checkpoint or args.save_checkpoint:
        return _cmd_simulate_segment(args)
    config = SimulationConfig(scale=args.scale, seed=args.seed)
    workers = getattr(args, "workers", 1)
    resume = getattr(args, "resume", False)
    if workers > 1 or resume:
        from repro.delivery.dataset import DeliveryDataset
        from repro.parallel import run_parallel_simulation

        with run_parallel_simulation(
            config, workers=workers,
            shard_root=f"{args.out}.slices" if resume else None,
            resume=resume,
        ) as run:
            dataset = DeliveryDataset(list(run.iter_records()))
        _status(f"parallel run: {run.workers} worker(s), "
                f"{len(run.slices)} slice(s), {run.elapsed_s:.1f}s")
        _status_resume(run, f"{args.out}.slices")
    else:
        dataset = run_simulation(config).dataset
    dataset.write_jsonl(args.out)
    breakdown = degree_breakdown(dataset)
    _status(f"simulated {len(dataset):,} emails "
            f"(scale={args.scale}, seed={args.seed})")
    _status(f"non/soft/hard: {pct(breakdown.non_fraction)} / "
            f"{pct(breakdown.soft_fraction)} / {pct(breakdown.hard_fraction)}")
    _status(f"wrote {args.out}")
    return 0


def _cmd_simulate_segment(args) -> int:
    """Checkpoint-mode simulate: run days ``[from, until)``, optionally
    saving/restoring the complete simulation state (docs/CHECKPOINTS.md)."""
    from repro.checkpoint import (
        CheckpointError,
        fresh_progress,
        load_checkpoint,
        run_segment,
        run_segment_parallel,
        save_checkpoint,
    )

    workers = getattr(args, "workers", 1)
    if getattr(args, "resume", False):
        print("simulate: --resume restarts slices within one run; "
              "checkpoints resume simulated time — use --from-checkpoint",
              file=sys.stderr)
        return 2
    try:
        if args.from_checkpoint:
            ckpt = load_checkpoint(args.from_checkpoint)
            world, progress, from_day = ckpt.world, ckpt.progress, ckpt.day
            checkpoint_path = args.from_checkpoint
            _status(f"restored {ckpt.name!r} at day {from_day} "
                    f"(digest {ckpt.meta['digest'][:12]})")
        else:
            from repro.world.model import build_world

            config = SimulationConfig(scale=args.scale, seed=args.seed)
            world = build_world(config)
            progress = fresh_progress(config)
            from_day = 0
            checkpoint_path = None
    except CheckpointError as exc:
        print(f"simulate: {exc}", file=sys.stderr)
        return 2
    n_days = world.clock.n_days
    until = args.until if args.until is not None else n_days
    if not from_day < until <= n_days:
        print(f"simulate: --until must be a day in ({from_day}, {n_days}]",
              file=sys.stderr)
        return 2

    n = 0
    if workers > 1:
        with run_segment_parallel(
            world, progress, until, workers, checkpoint_path=checkpoint_path
        ) as segment:
            with open(args.out, "w", encoding="utf-8") as fh:
                for record in segment.iter_records():
                    fh.write(record.to_json() + "\n")
                    n += 1
            progress = segment.progress
        _status(f"parallel segment: {workers} worker(s), "
                f"{segment.elapsed_s:.1f}s")
    else:
        segment = run_segment(world, progress, until)
        with open(args.out, "w", encoding="utf-8") as fh:
            for record in segment.records:
                fh.write(record.to_json() + "\n")
                n += 1
        progress = segment.finish()
    _status(f"segment days [{from_day}, {until}): {n:,} records -> {args.out}")
    if args.save_checkpoint:
        save_checkpoint(args.save_checkpoint, world, until, progress)
        _status(f"checkpoint saved: {args.save_checkpoint} (day {until})")
    return 0


def _cmd_branch(args) -> int:
    from repro.checkpoint import (
        CheckpointError,
        branch_checkpoint,
        intervention_catalog,
    )

    if args.list_interventions:
        print(intervention_catalog())
        return 0
    if not args.checkpoint or not args.out:
        print("branch: need SOURCE and DEST checkpoint directories "
              "(or --list-interventions)", file=sys.stderr)
        return 2
    if not args.apply:
        print("branch: need at least one --apply NAME[:ARG]; see "
              "--list-interventions", file=sys.stderr)
        return 2
    try:
        summaries = branch_checkpoint(
            args.checkpoint, args.out, args.apply,
            verify=not args.no_verify,
        )
    except (CheckpointError, ValueError) as exc:
        print(f"branch: {exc}", file=sys.stderr)
        return 2
    for line in summaries:
        _status(f"  {line}")
    _status(f"branched {args.checkpoint} -> {args.out}")
    print(args.out)
    return 0


def _cmd_diff_runs(args) -> int:
    import json

    from repro.checkpoint import diff_runs

    try:
        diff, text = diff_runs(
            args.run_a, args.run_b, top=args.top,
            label_a=args.label_a, label_b=args.label_b,
        )
    except (FileNotFoundError, ValueError) as exc:
        print(f"diff-runs: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(diff, sort_keys=True))
    else:
        print(text, end="")
    return 0


def _status_resume(run, slices_dir: str) -> None:
    """One status line about what a resumed run reused vs redid."""
    if run.resumed_slices or run.rerun_slices:
        _status(f"resume: reused {len(run.resumed_slices)} slice(s), "
                f"re-ran {len(run.rerun_slices)}; slices kept in {slices_dir}")


def _cmd_stream(args) -> int:
    from repro.stream.sink import ShardWriter
    from repro.util.clock import SimClock

    config = SimulationConfig(scale=args.scale, seed=args.seed)
    workers = getattr(args, "workers", 1)
    resume = getattr(args, "resume", False)
    if workers > 1 or resume:
        from repro.parallel import run_parallel_simulation

        parallel_run = run_parallel_simulation(
            config, workers=workers,
            shard_root=f"{args.out_dir}.slices" if resume else None,
            resume=resume,
        )
        records = parallel_run.iter_records()
        clock = SimClock(config.start, config.end)
        _status(f"parallel run: {parallel_run.workers} worker(s), "
                f"{len(parallel_run.slices)} slice(s), "
                f"{parallel_run.elapsed_s:.1f}s; merging into {args.out_dir}")
        _status_resume(parallel_run, f"{args.out_dir}.slices")
    else:
        from repro.stream.runner import stream_simulation

        parallel_run = None
        run = stream_simulation(config)
        records = run.records
        clock = run.world.clock
    try:
        with ShardWriter(
            args.out_dir, shard_size=args.shard_size, compress=args.gzip
        ) as writer:
            for record in records:
                writer.write(record)
                n = writer.n_written
                if args.progress_every and n % args.progress_every == 0:
                    _status(f"  {n:,} records "
                            f"(sim day {clock.day_index(record.start_time)}"
                            f"/{clock.n_days})")
    finally:
        if parallel_run is not None:
            parallel_run.cleanup()
    manifest = writer.manifest
    _status(f"streamed {manifest.n_records:,} records into "
            f"{len(manifest.shards)} shard(s) under {args.out_dir} "
            f"(scale={args.scale}, seed={args.seed})")
    _status(f"manifest: {args.out_dir}/manifest.json")
    return 0


def _cmd_recover(args) -> int:
    from repro.stream.sink import recover_shards

    report = recover_shards(args.directory, finalize=args.finalize)
    if report.already_complete:
        _status(f"{args.directory}: final manifest is valid; nothing to do")
        return 0
    for shard in report.shards:
        note = ""
        if shard.rewritten:
            note = f"  (truncated, dropped {shard.n_dropped_lines} line(s))"
        print(f"{shard.name}  records={shard.n_records}{note}")
    print(f"salvaged {report.n_records:,} record(s) in "
          f"{len(report.shards)} shard(s)"
          + (f", dropped {report.n_dropped_lines} torn line(s)"
             if report.torn else ""))
    if report.finalized:
        _status(f"wrote final manifest: {args.directory}/manifest.json")
    else:
        _status(f"recorded salvage in {args.directory}/manifest.partial.json "
                "(--finalize writes a final manifest)")
    return 0


def _cmd_watch(args) -> int:
    from repro.stream.monitor import (
        BounceRateMonitor,
        BounceTypeMonitor,
        DeliverabilityMonitor,
        RecordClassifier,
    )
    from repro.stream.online import OnlineEBRC
    from repro.stream.sink import iter_delivery_log
    from repro.util.clock import SimClock

    clock = SimClock()
    window_s = args.window_hours * 3600.0
    monitor = DeliverabilityMonitor(
        bounce_rate=BounceRateMonitor(
            window_s=window_s, threshold=args.bounce_rate_threshold
        ),
        bounce_types=BounceTypeMonitor(window_s=window_s),
    )

    # Watch has no delivery engine, so --trace-sample reconstructs trees
    # from replayed records instead of tracing live — using the same
    # content-keyed 1-in-N rule as the live tracer, so a watch over a
    # shard dir traces exactly the emails a live traced run would have.
    trace_fh = None
    n_traced = 0
    if args.trace_sample:
        from repro.obs.trace import sample_hit, span_tree_from_record

        trace_fh = (sys.stdout if args.trace_out == "-"
                    else open(args.trace_out, "w", encoding="utf-8"))

    reporter = None
    if args.report_every:
        from repro.stream.report_hook import PeriodicTableReporter

        reporter = PeriodicTableReporter(args.report_every,
                                         top=args.report_top)

    def records():
        nonlocal n_traced
        for record in iter_delivery_log(args.log):
            if trace_fh is not None and sample_hit(
                record.message_id, args.trace_sample
            ):
                trace_fh.write(span_tree_from_record(record).to_json() + "\n")
                n_traced += 1
            if reporter is not None:
                rendered = reporter.feed(record)
                if rendered is not None:
                    print(f"--- live tables @ {reporter.n_records:,} "
                          f"records ---")
                    print(rendered, end="")
            yield record

    if args.labeler == "rules":
        labeler = RuleLabeler()

        def pairs():
            for record in records():
                failure = record.first_failure()
                bounce_type = (
                    labeler.classify(failure.result) if failure else None
                )
                yield record, bounce_type

        online = None
        stream = pairs()
    else:
        online = OnlineEBRC(warmup=args.warmup)
        classifier = RecordClassifier(online)

        def pairs():
            for record in records():
                yield from classifier.feed(record)
            yield from classifier.finalize()

        stream = pairs()

    n_alerts = 0
    try:
        for alert in monitor.watch(stream):
            print(alert.render(clock))
            if not alert.cleared:
                n_alerts += 1
                if args.max_alerts and n_alerts >= args.max_alerts:
                    _status(f"stopping after {n_alerts} alerts (--max-alerts)")
                    break
    finally:
        if trace_fh is not None and trace_fh is not sys.stdout:
            trace_fh.close()
    if reporter is not None:
        rendered = reporter.final()
        if rendered is not None:
            print(f"--- final tables @ {reporter.n_records:,} records ---")
            print(rendered, end="")
    _status()
    _status(f"watch summary: {monitor.summary()}")
    if online is not None and online.fitted:
        _status(f"online EBRC: {online.n_templates} templates, "
                f"{online.stats.n_flushed:,} classified, "
                f"cache hit rate {online.stats.cache_hit_rate:.1%}, "
                f"novel fraction {online.novel_fraction:.2%}")
    if trace_fh is not None:
        _status(f"traced {n_traced} record(s) -> {args.trace_out}")
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs import metrics as obs_metrics
    from repro.obs.export import build_snapshot, load_snapshot, write_metrics

    if args.snapshot is not None:
        snapshot = load_snapshot(args.snapshot)
        write_metrics(args.out, args.format, snapshot)
        return 0

    from repro.obs import profile as obs_profile
    from repro.stream.runner import iter_simulation

    obs_metrics.enable()
    obs_metrics.reset()
    obs_profile.reset()
    # Module-level fastpath memos bound their (no-op) counters at import;
    # rebind them now that telemetry is live.
    from repro.core import fastpath

    fastpath.reset()
    try:
        config = SimulationConfig(scale=args.scale, seed=args.seed)
        n = 0
        for _ in iter_simulation(config):
            n += 1
        _status(f"simulated {n:,} emails with telemetry on "
                f"(scale={args.scale}, seed={args.seed})")
        write_metrics(args.out, args.format, build_snapshot())
    finally:
        obs_metrics.disable()
        obs_metrics.reset()
        obs_profile.reset()
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.trace import span_tree_from_record
    from repro.stream.sink import iter_delivery_log

    if args.list_n:
        rows = []
        for i, record in enumerate(iter_delivery_log(args.log)):
            if i >= args.list_n:
                break
            rows.append([i, record.message_id, record.sender, record.receiver,
                         record.bounce_degree.value, record.n_attempts])
        print(render_table(
            "Traceable emails",
            ["#", "message_id", "sender", "receiver", "degree", "attempts"],
            rows,
        ))
        return 0

    target = None
    if args.message_id is not None:
        for record in iter_delivery_log(args.log):
            if record.message_id == args.message_id:
                target = record
                break
        if target is None:
            print(f"no record with message id {args.message_id}",
                  file=sys.stderr)
            return 1
    else:
        index = args.index if args.index is not None else 0
        for i, record in enumerate(iter_delivery_log(args.log)):
            if i == index:
                target = record
                break
        if target is None:
            print(f"index {index} out of range", file=sys.stderr)
            return 1

    tree = span_tree_from_record(target)
    if args.json:
        print(tree.to_json())
    else:
        print(tree.render())
    return 0


def _cmd_report(args) -> int:
    from repro.analytics.render import render_report

    batch = args.batch or args.labeler == "ebrc"
    if args.shards:
        if args.dataset is not None or batch:
            print("report: --shards cannot be combined with a dataset "
                  "positional, --batch, or --labeler ebrc", file=sys.stderr)
            return 2
        from repro.analytics.parallel import suite_from_shards

        suite = suite_from_shards(args.shards, workers=args.workers)
        payload = suite.tables(args.top)
    elif args.dataset is None:
        print("report: need a dataset path, '-' (stdin), or --shards",
              file=sys.stderr)
        return 2
    elif args.dataset == "-":
        if batch:
            print("report: --batch/--labeler ebrc need a saved dataset, "
                  "not stdin", file=sys.stderr)
            return 2
        from repro.analytics import RecordDecodeError, TableSuite
        from repro.analytics.io import iter_ndjson_records

        suite = TableSuite()
        try:
            suite.observe_many(iter_ndjson_records(sys.stdin))
        except RecordDecodeError as exc:
            print(f"report: {exc}", file=sys.stderr)
            return 2
        payload = suite.tables(args.top)
    elif batch:
        from repro.analytics.batch import batch_tables
        from repro.stream.sink import iter_delivery_log

        dataset = DeliveryDataset(list(iter_delivery_log(args.dataset)))
        labeler = RuleLabeler() if args.labeler == "rules" else EBRCLabeler()
        payload = batch_tables(dataset, top=args.top, labeler=labeler)
    else:
        from repro.analytics import TableSuite
        from repro.stream.sink import iter_delivery_log

        suite = TableSuite()
        suite.observe_many(iter_delivery_log(args.dataset))
        payload = suite.tables(args.top)
    if not payload["n_records"]:
        print("empty dataset", file=sys.stderr)
        return 1
    print(render_report(payload, args.top), end="")
    return 0


def _read_ndr_lines(source: str) -> list[str]:
    """NDR lines from a file path or ``-`` (stdin); blanks dropped."""
    if source == "-":
        return [l.strip() for l in sys.stdin if l.strip()]
    with open(source, encoding="utf-8") as fh:
        return [l.strip() for l in fh if l.strip()]


def _cmd_classify(args) -> int:
    from repro.serve.handlers import classify_rows, render_row

    # With --artifact the first positional is the lines source, so both
    # `classify log.jsonl -` and `classify --artifact m.json -` read well.
    dataset_path, lines_src = args.dataset, args.lines
    if args.artifact is not None and lines_src is None:
        dataset_path, lines_src = None, args.dataset

    if args.artifact is not None:
        from repro.core.ebrc import EBRC

        classify = EBRC.load(args.artifact).classify
    else:
        if dataset_path is None:
            print("classify: need a training dataset or --artifact",
                  file=sys.stderr)
            return 2
        dataset = DeliveryDataset.read_jsonl(dataset_path)
        corpus = dataset.ndr_messages()
        if not corpus:
            print("dataset has no NDR messages to train on", file=sys.stderr)
            return 1
        classify = EBRCLabeler().fit(corpus).classify

    lines = list(args.message)
    if lines_src is not None:
        lines.extend(_read_ndr_lines(lines_src))
    elif not lines:
        lines = _read_ndr_lines("-")
    # classify_rows is the exact code path POST /classify serves, so a
    # shell pipeline and an HTTP client can never disagree on a label.
    for row in classify_rows(classify, lines):
        print(render_row(row))
    return 0


def _cmd_fit(args) -> int:
    from repro.core.ebrc import EBRC, artifact_fingerprint
    from repro.stream.sink import iter_delivery_log

    corpus = [
        attempt.result
        for record in iter_delivery_log(args.dataset)
        for attempt in record.attempts
        if not attempt.succeeded
    ]
    if not corpus:
        print("dataset has no NDR messages to train on", file=sys.stderr)
        return 1
    ebrc = EBRC().fit(corpus)
    ebrc.save(args.out)
    _status(f"fitted EBRC on {len(corpus):,} NDR lines: "
            f"{ebrc.n_templates} templates")
    _status(f"wrote {args.out} "
            f"(fingerprint {artifact_fingerprint(args.out)[:12]})")
    return 0


def _cmd_serve(args) -> int:
    from repro.serve.server import ServeConfig, run_server

    config = ServeConfig(
        artifact=args.artifact,
        host=args.host,
        port=args.port,
        port_file=args.port_file,
        max_inflight=args.max_inflight,
        max_queue=args.max_queue,
        max_wait_s=args.max_wait_ms / 1000.0,
        reload_interval_s=args.reload_interval,
        trace_sample=args.trace_sample,
        trace_capacity=args.trace_capacity,
        snapshot_out=args.snapshot_out,
    )
    return run_server(config, status=_status)


def _cmd_loadtest(args) -> int:
    from pathlib import Path

    from repro.serve.loadgen import LoadConfig, run_loadtest

    port = args.port
    if port is None and args.port_file:
        port = int(Path(args.port_file).read_text(encoding="utf-8").strip())
    if port is None:
        print("loadtest: need --port or --port-file", file=sys.stderr)
        return 2
    config = LoadConfig(
        host=args.host,
        port=port,
        artifact=args.artifact,
        n_requests=args.requests,
        concurrency=args.concurrency,
        batch=args.batch,
        corpus_scale=args.corpus_scale,
        corpus_seed=args.corpus_seed,
        retry_cap_s=args.retry_cap,
    )
    _status(f"loadtest: {args.requests} requests x {args.batch} message(s), "
            f"{args.concurrency} closed-loop workers -> "
            f"http://{args.host}:{port}")
    report = run_loadtest(config)
    print(f"requests: {report.n_requests:,}  "
          f"messages: {report.n_messages:,}  "
          f"duration: {report.duration_s:.2f}s")
    print(f"throughput: {report.requests_per_s:,.0f} req/s  "
          f"{report.messages_per_s:,.0f} msg/s")
    latency = report.latency_ms
    print(f"latency ms: p50={latency['p50']} p95={latency['p95']} "
          f"p99={latency['p99']} max={latency['max']}")
    print(f"backpressure: {report.backpressure_429} x 429  "
          f"mismatches: {report.mismatches}")
    if args.out != "-":
        report.write_bench(args.out)
        _status(f"wrote {args.out}")
    if report.mismatches or report.errors:
        for err in report.errors:
            print(f"error: {err}", file=sys.stderr)
        return 1
    return 0


def _cmd_explain(args) -> int:
    dataset = DeliveryDataset.read_jsonl(args.dataset)
    if args.index is None:
        index = next((i for i, r in enumerate(dataset) if r.bounced), 0)
    else:
        index = args.index
    if not 0 <= index < len(dataset):
        print(f"index {index} out of range (0..{len(dataset) - 1})", file=sys.stderr)
        return 1
    record = dataset[index]
    print(f"record #{index}: {record.sender} -> {record.receiver} "
          f"[{record.bounce_degree.value}] flag={record.email_flag}")
    for i, attempt in enumerate(record.attempts, 1):
        print(f"\n--- attempt {i} (proxy {attempt.from_ip}) ---")
        transcript = transcript_for_attempt(
            attempt, record.sender, record.receiver,
            mx_host=f"mx1.{record.receiver_domain}",
        )
        print(transcript.render())
        print(f"outcome: {transcript.outcome}")
    return 0


def _cmd_squat(args) -> int:
    from repro.analysis.squatting import squatting_report

    result = run_simulation(SimulationConfig(scale=args.scale, seed=args.seed))
    labeled = LabeledDataset(result.dataset, RuleLabeler())
    report = squatting_report(labeled, result.world)
    print(f"vulnerable domains: {report.n_vulnerable_domains} "
          f"({report.total_domain_emails()} emails, "
          f"{report.total_domain_senders()} senders)")
    print(f"with receive history: {len(report.domains_with_history())}; "
          f"re-registered: {len(report.reregistered_domains())}")
    print(f"vulnerable usernames: {report.n_vulnerable_usernames}")
    for domain in report.domains[:10]:
        flags = []
        if domain.historically_received:
            flags.append("history")
        if domain.reregistered:
            flags.append("re-registered")
        if domain.registrant_changed:
            flags.append("new-owner")
        print(f"  {domain.domain}  emails={domain.n_emails} "
              f"senders={domain.n_senders} {' '.join(flags)}")
    return 0


def _cmd_recommend(args) -> int:
    from repro.analysis.recommendations import build_recommendations

    result = run_simulation(SimulationConfig(scale=args.scale, seed=args.seed))
    labeled = LabeledDataset(result.dataset, RuleLabeler())
    for rec in build_recommendations(labeled, result.world):
        print(rec.render())
        print()
    return 0


def _cmd_world_info(args) -> int:
    from repro.world.model import build_world
    from repro.world.inspect import country_distribution, summarize_world

    world = build_world(SimulationConfig(scale=args.scale, seed=args.seed))
    print(summarize_world(world).render())
    top = country_distribution(world).most_common(8)
    print("top MTA countries: " + ", ".join(f"{c}={n}" for c, n in top))
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis.comparison import compare_to_paper, scorecard

    result = run_simulation(SimulationConfig(scale=args.scale, seed=args.seed))
    labeled = LabeledDataset(result.dataset, RuleLabeler())
    comparisons = compare_to_paper(labeled, result.world)
    for c in comparisons:
        print(c.render())
    hits, total = scorecard(comparisons)
    print(f"\nin regime: {hits}/{total}")
    return 0


def _cmd_full_report(args) -> int:
    from repro.analysis.fullreport import full_report

    result = run_simulation(SimulationConfig(scale=args.scale, seed=args.seed))
    print(full_report(result))
    return 0


def _cmd_scenario(args) -> int:
    from dataclasses import asdict

    from repro.scenario import get_pack, list_packs, scenario_report
    from repro.scenario.builder import ScenarioError

    if args.action == "list":
        for name, description in list_packs():
            print(f"{name:16s} {description}")
        return 0

    if not args.pack:
        print("scenario: pack name required (see `repro scenario list`)",
              file=sys.stderr)
        return 2
    try:
        compiled = get_pack(args.pack, scale=args.scale, seed=args.seed)
    except ScenarioError as exc:
        print(f"scenario: {exc}", file=sys.stderr)
        return 2

    if args.action == "show":
        config = compiled.config
        print(f"pack: {compiled.name}")
        print(f"  {compiled.description}")
        print(f"base: scale={config.scale} seed={config.seed}")
        print(f"ops ({len(config.scenario)}):")
        for op in config.scenario:
            fields = {k: v for k, v in asdict(op).items() if k != "kind"}
            rendered = ", ".join(f"{k}={v!r}" for k, v in fields.items())
            print(f"  {op.kind:14s} {rendered}")
        return 0

    workers = getattr(args, "workers", 1)
    if getattr(args, "resume", False):
        print("scenario: --resume is not supported here; use "
              "`repro simulate` for resumable runs", file=sys.stderr)
        return 2
    _status(f"running pack {compiled.name!r} "
            f"(scale={compiled.config.scale}, seed={compiled.config.seed}, "
            f"workers={workers})")
    if workers > 1:
        from repro.parallel import run_parallel_simulation

        with run_parallel_simulation(
            compiled.config, workers=workers,
            extra_workloads=list(compiled.workloads),
        ) as run:
            records = list(run.iter_records())
        _status(f"parallel run: {run.workers} worker(s), "
                f"{len(run.slices)} slice(s), {run.elapsed_s:.1f}s")
    else:
        records = list(compiled.run())
    out = args.out if args.out is not None else f"{compiled.name}.jsonl"
    if out != "-":
        with open(out, "w", encoding="utf-8") as fh:
            for record in records:
                fh.write(record.to_json() + "\n")
        _status(f"wrote {len(records):,} records -> {out}")
    if not args.no_report:
        print(scenario_report(compiled, records))
    return 0


def _cmd_version(args) -> int:
    print(f"repro-bounce {__version__}")
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "stream": _cmd_stream,
    "recover": _cmd_recover,
    "watch": _cmd_watch,
    "metrics": _cmd_metrics,
    "trace": _cmd_trace,
    "report": _cmd_report,
    "classify": _cmd_classify,
    "fit": _cmd_fit,
    "serve": _cmd_serve,
    "loadtest": _cmd_loadtest,
    "explain": _cmd_explain,
    "squat": _cmd_squat,
    "branch": _cmd_branch,
    "diff-runs": _cmd_diff_runs,
    "recommend": _cmd_recommend,
    "world-info": _cmd_world_info,
    "compare": _cmd_compare,
    "full-report": _cmd_full_report,
    "scenario": _cmd_scenario,
    "version": _cmd_version,
}


def _wants_live_obs(args) -> bool:
    return bool(getattr(args, "metrics_out", None)) or bool(
        getattr(args, "trace_sample", 0)
    )


def main(argv: list[str] | None = None) -> int:
    global _QUIET
    args = _build_parser().parse_args(argv)
    _QUIET = getattr(args, "quiet", False)

    from repro.core import fastpath

    no_cache = getattr(args, "no_cache", False)
    if no_cache:
        # Verification/benchmark mode: run every hot path on the reference
        # implementations.  Output is byte-identical either way.
        fastpath.disable()
    no_columnar = getattr(args, "no_columnar", False)
    if no_columnar:
        fastpath.disable_columnar()

    live_obs = _wants_live_obs(args)
    tracer = None
    if live_obs:
        # Telemetry must be on BEFORE the world/engine is constructed —
        # instrumented objects read the flag once, at construction time.
        from repro.obs import metrics as obs_metrics
        from repro.obs import profile as obs_profile

        obs_metrics.enable()
        obs_metrics.reset()
        obs_profile.reset()
        # Rebind module-level fastpath memo counters to the now-live
        # registry (instance-level caches bind at construction, which
        # happens after this point).
        fastpath.reset()
        if getattr(args, "trace_sample", 0) and args.command in (
            "simulate", "stream"
        ):
            if getattr(args, "workers", 1) > 1:
                _status("note: --trace-sample collects live spans only "
                        "in-process; with --workers > 1, reconstruct "
                        "traces from the output instead (repro trace)")
            from repro.obs.trace import configure_tracer

            tracer = configure_tracer(
                sample_every=args.trace_sample,
                capacity=getattr(args, "trace_capacity", 256),
            )
    try:
        code = _COMMANDS[args.command](args)
        if live_obs and code == 0:
            if getattr(args, "metrics_out", None):
                from repro.obs.export import write_metrics

                write_metrics(args.metrics_out, args.metrics_format)
                if args.metrics_out != "-":
                    _status(f"metrics: {args.metrics_out}")
            if tracer is not None:
                n = tracer.export_jsonl(
                    sys.stdout if args.trace_out == "-" else args.trace_out
                )
                _status(f"traces: {n} span tree(s) -> {args.trace_out} "
                        f"(sampled every {tracer.sample_every} of "
                        f"{tracer.n_seen:,} emails)")
        return code
    finally:
        if live_obs:
            from repro.obs import metrics as obs_metrics
            from repro.obs import profile as obs_profile
            from repro.obs.trace import reset_tracer

            obs_metrics.disable()
            obs_metrics.reset()
            obs_profile.reset()
            reset_tracer()
        if no_columnar:
            fastpath.enable_columnar()
        if no_cache:
            fastpath.enable()
        elif live_obs:
            # Drop the live-bound memo counters again.
            fastpath.reset()


if __name__ == "__main__":
    raise SystemExit(main())
