"""Command-line interface.

Subcommands:

* ``simulate`` — run a simulation and write the delivery log as JSONL
  (the paper's Figure 3 record format).
* ``stream``   — streaming simulate: records go straight into rotating
  JSONL shards with a checksummed manifest (bounded memory).
* ``watch``    — replay a saved log (file or shard dir) through the
  online EBRC and the sliding-window deliverability monitors.
* ``report``   — bounce-degree and bounce-type report over a saved log.
* ``classify`` — classify NDR lines with an EBRC trained on a saved log.
* ``explain``  — reconstruct the SMTP dialogue behind one email's attempts.
* ``squat``    — run the squatting audit on a fresh simulation.

Entry point: ``repro-bounce`` (or ``python -m repro.cli``).
"""

from __future__ import annotations

import argparse
import sys

from repro import SimulationConfig, run_simulation
from repro.analysis.degrees import degree_breakdown, mean_attempts_soft_bounced
from repro.analysis.label import EBRCLabeler, LabeledDataset, RuleLabeler
from repro.analysis.rankings import table3_top_domains
from repro.analysis.report import pct, render_table
from repro.core.taxonomy import BounceType
from repro.delivery.dataset import DeliveryDataset
from repro.smtp.session import transcript_for_attempt


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-bounce",
        description="Bounce-in-the-Wild reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="run a simulation, write JSONL")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out", default="delivery_log.jsonl")

    p = sub.add_parser("stream", help="streaming simulate -> sharded JSONL")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)
    p.add_argument("--out-dir", default="delivery_shards")
    p.add_argument("--shard-size", type=int, default=50_000,
                   help="records per shard before rotation")
    p.add_argument("--gzip", action="store_true", help="compress shards")
    p.add_argument("--progress-every", type=int, default=10_000,
                   help="print progress every N records (0 = quiet)")

    p = sub.add_parser("watch", help="replay a log through the online "
                                     "EBRC + deliverability monitors")
    p.add_argument("log", help="delivery log: JSONL file or shard directory")
    p.add_argument("--labeler", choices=("online-ebrc", "rules"),
                   default="online-ebrc")
    p.add_argument("--warmup", type=int, default=2000,
                   help="NDR lines buffered before the first EBRC fit")
    p.add_argument("--window-hours", type=float, default=48.0,
                   help="sliding-window span for rate/type monitors")
    p.add_argument("--bounce-rate-threshold", type=float, default=0.35)
    p.add_argument("--max-alerts", type=int, default=0,
                   help="stop after N alerts (0 = no limit)")

    p = sub.add_parser("report", help="summarise a saved delivery log")
    p.add_argument("dataset")
    p.add_argument("--labeler", choices=("rules", "ebrc"), default="rules")
    p.add_argument("--top", type=int, default=10)

    p = sub.add_parser("classify", help="classify NDR lines (EBRC)")
    p.add_argument("dataset", help="training corpus (saved delivery log)")
    p.add_argument("--message", action="append", default=[],
                   help="NDR line to classify (repeatable); stdin otherwise")

    p = sub.add_parser("explain", help="show the SMTP dialogue of one email")
    p.add_argument("dataset")
    p.add_argument("--index", type=int, default=None,
                   help="record index (default: first bounced record)")

    p = sub.add_parser("squat", help="squatting audit on a fresh simulation")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("recommend", help="postmaster recommendations (§6.2)")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("world-info", help="summarise the synthetic world")
    p.add_argument("--scale", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("compare", help="paper-vs-measured scorecard")
    p.add_argument("--scale", type=float, default=0.15)
    p.add_argument("--seed", type=int, default=7)

    p = sub.add_parser("full-report", help="run every analysis on a fresh simulation")
    p.add_argument("--scale", type=float, default=0.12)
    p.add_argument("--seed", type=int, default=7)
    return parser


def _cmd_simulate(args) -> int:
    config = SimulationConfig(scale=args.scale, seed=args.seed)
    result = run_simulation(config)
    result.dataset.write_jsonl(args.out)
    breakdown = degree_breakdown(result.dataset)
    print(f"simulated {len(result.dataset):,} emails "
          f"(scale={args.scale}, seed={args.seed})")
    print(f"non/soft/hard: {pct(breakdown.non_fraction)} / "
          f"{pct(breakdown.soft_fraction)} / {pct(breakdown.hard_fraction)}")
    print(f"wrote {args.out}")
    return 0


def _cmd_stream(args) -> int:
    from repro.stream.runner import stream_simulation
    from repro.stream.sink import ShardWriter

    config = SimulationConfig(scale=args.scale, seed=args.seed)
    run = stream_simulation(config)
    clock = run.world.clock
    with ShardWriter(
        args.out_dir, shard_size=args.shard_size, compress=args.gzip
    ) as writer:
        for record in run.records:
            writer.write(record)
            n = writer.n_written
            if args.progress_every and n % args.progress_every == 0:
                print(f"  {n:,} records "
                      f"(sim day {clock.day_index(record.start_time)}"
                      f"/{clock.n_days})")
    manifest = writer.manifest
    print(f"streamed {manifest.n_records:,} records into "
          f"{len(manifest.shards)} shard(s) under {args.out_dir} "
          f"(scale={args.scale}, seed={args.seed})")
    print(f"manifest: {args.out_dir}/manifest.json")
    return 0


def _cmd_watch(args) -> int:
    from repro.stream.monitor import (
        BounceRateMonitor,
        BounceTypeMonitor,
        DeliverabilityMonitor,
        RecordClassifier,
    )
    from repro.stream.online import OnlineEBRC
    from repro.stream.sink import iter_delivery_log
    from repro.util.clock import SimClock

    clock = SimClock()
    window_s = args.window_hours * 3600.0
    monitor = DeliverabilityMonitor(
        bounce_rate=BounceRateMonitor(
            window_s=window_s, threshold=args.bounce_rate_threshold
        ),
        bounce_types=BounceTypeMonitor(window_s=window_s),
    )

    if args.labeler == "rules":
        labeler = RuleLabeler()

        def pairs():
            for record in iter_delivery_log(args.log):
                failure = record.first_failure()
                bounce_type = (
                    labeler.classify(failure.result) if failure else None
                )
                yield record, bounce_type

        online = None
        stream = pairs()
    else:
        online = OnlineEBRC(warmup=args.warmup)
        classifier = RecordClassifier(online)

        def pairs():
            for record in iter_delivery_log(args.log):
                yield from classifier.feed(record)
            yield from classifier.finalize()

        stream = pairs()

    n_alerts = 0
    for alert in monitor.watch(stream):
        print(alert.render(clock))
        if not alert.cleared:
            n_alerts += 1
            if args.max_alerts and n_alerts >= args.max_alerts:
                print(f"stopping after {n_alerts} alerts (--max-alerts)")
                break
    print()
    print(f"watch summary: {monitor.summary()}")
    if online is not None and online.fitted:
        print(f"online EBRC: {online.n_templates} templates, "
              f"{online.stats.n_flushed:,} classified, "
              f"cache hit rate {online.stats.cache_hit_rate:.1%}, "
              f"novel fraction {online.novel_fraction:.2%}")
    return 0


def _cmd_report(args) -> int:
    dataset = DeliveryDataset.read_jsonl(args.dataset)
    if not len(dataset):
        print("empty dataset", file=sys.stderr)
        return 1
    labeler = RuleLabeler() if args.labeler == "rules" else EBRCLabeler()
    labeled = LabeledDataset(dataset, labeler)

    breakdown = degree_breakdown(dataset)
    print(f"emails: {len(dataset):,}")
    print(f"non/soft/hard: {pct(breakdown.non_fraction)} / "
          f"{pct(breakdown.soft_fraction)} / {pct(breakdown.hard_fraction)}")
    print(f"mean attempts of soft-bounced: "
          f"{mean_attempts_soft_bounced(dataset):.2f}")

    distribution = labeled.type_distribution()
    total = sum(distribution.values()) or 1
    print()
    print(render_table(
        "Bounce types",
        ["type", "meaning", "count", "share"],
        [
            [t.value, t.description[:44], n, pct(n / total)]
            for t, n in distribution.most_common()
        ],
    ))
    print(f"ambiguous NDRs excluded: {labeled.n_ambiguous()}")
    print()
    print(render_table(
        f"Top-{args.top} receiver domains",
        ["domain", "emails", "hard", "soft"],
        [
            [r.key, r.email_volume, pct(r.hard_fraction), pct(r.soft_fraction)]
            for r in table3_top_domains(labeled, top=args.top)
        ],
    ))
    return 0


def _cmd_classify(args) -> int:
    dataset = DeliveryDataset.read_jsonl(args.dataset)
    corpus = dataset.ndr_messages()
    if not corpus:
        print("dataset has no NDR messages to train on", file=sys.stderr)
        return 1
    labeler = EBRCLabeler().fit(corpus)
    lines = args.message or [l.strip() for l in sys.stdin if l.strip()]
    for line in lines:
        result = labeler.classify(line)
        if result is None:
            print(f"AMBIGUOUS\t{line}")
        else:
            print(f"{result.value}\t{result.description}\t{line}")
    return 0


def _cmd_explain(args) -> int:
    dataset = DeliveryDataset.read_jsonl(args.dataset)
    if args.index is None:
        index = next((i for i, r in enumerate(dataset) if r.bounced), 0)
    else:
        index = args.index
    if not 0 <= index < len(dataset):
        print(f"index {index} out of range (0..{len(dataset) - 1})", file=sys.stderr)
        return 1
    record = dataset[index]
    print(f"record #{index}: {record.sender} -> {record.receiver} "
          f"[{record.bounce_degree.value}] flag={record.email_flag}")
    for i, attempt in enumerate(record.attempts, 1):
        print(f"\n--- attempt {i} (proxy {attempt.from_ip}) ---")
        transcript = transcript_for_attempt(
            attempt, record.sender, record.receiver,
            mx_host=f"mx1.{record.receiver_domain}",
        )
        print(transcript.render())
        print(f"outcome: {transcript.outcome}")
    return 0


def _cmd_squat(args) -> int:
    from repro.analysis.squatting import squatting_report

    result = run_simulation(SimulationConfig(scale=args.scale, seed=args.seed))
    labeled = LabeledDataset(result.dataset, RuleLabeler())
    report = squatting_report(labeled, result.world)
    print(f"vulnerable domains: {report.n_vulnerable_domains} "
          f"({report.total_domain_emails()} emails, "
          f"{report.total_domain_senders()} senders)")
    print(f"with receive history: {len(report.domains_with_history())}; "
          f"re-registered: {len(report.reregistered_domains())}")
    print(f"vulnerable usernames: {report.n_vulnerable_usernames}")
    for domain in report.domains[:10]:
        flags = []
        if domain.historically_received:
            flags.append("history")
        if domain.reregistered:
            flags.append("re-registered")
        if domain.registrant_changed:
            flags.append("new-owner")
        print(f"  {domain.domain}  emails={domain.n_emails} "
              f"senders={domain.n_senders} {' '.join(flags)}")
    return 0


def _cmd_recommend(args) -> int:
    from repro.analysis.recommendations import build_recommendations

    result = run_simulation(SimulationConfig(scale=args.scale, seed=args.seed))
    labeled = LabeledDataset(result.dataset, RuleLabeler())
    for rec in build_recommendations(labeled, result.world):
        print(rec.render())
        print()
    return 0


def _cmd_world_info(args) -> int:
    from repro.world.model import build_world
    from repro.world.inspect import country_distribution, summarize_world

    world = build_world(SimulationConfig(scale=args.scale, seed=args.seed))
    print(summarize_world(world).render())
    top = country_distribution(world).most_common(8)
    print("top MTA countries: " + ", ".join(f"{c}={n}" for c, n in top))
    return 0


def _cmd_compare(args) -> int:
    from repro.analysis.comparison import compare_to_paper, scorecard

    result = run_simulation(SimulationConfig(scale=args.scale, seed=args.seed))
    labeled = LabeledDataset(result.dataset, RuleLabeler())
    comparisons = compare_to_paper(labeled, result.world)
    for c in comparisons:
        print(c.render())
    hits, total = scorecard(comparisons)
    print(f"\nin regime: {hits}/{total}")
    return 0


def _cmd_full_report(args) -> int:
    from repro.analysis.fullreport import full_report

    result = run_simulation(SimulationConfig(scale=args.scale, seed=args.seed))
    print(full_report(result))
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "stream": _cmd_stream,
    "watch": _cmd_watch,
    "report": _cmd_report,
    "classify": _cmd_classify,
    "explain": _cmd_explain,
    "squat": _cmd_squat,
    "recommend": _cmd_recommend,
    "world-info": _cmd_world_info,
    "compare": _cmd_compare,
    "full-report": _cmd_full_report,
}


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
