"""Typo fuzzers.

All fuzzers operate on a lowercase label (a domain's second-level label or
a username) and emit :class:`TypoCandidate` values tagged with the fuzzing
class.  ``domain_typos``/``username_typos`` enumerate candidates (the
dnstwist role in the detection pipeline); ``sample_*_typo`` draws a single
typo with class weights calibrated to the paper's observed morphology
(omission most common, then replacement/bitsquatting).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.core import fastpath
from repro.util.rng import RandomSource


class TypoKind(str, Enum):
    OMISSION = "omission"
    INSERTION = "insertion"
    REPLACEMENT = "replacement"
    TRANSPOSITION = "transposition"
    REPETITION = "repetition"
    BITSQUATTING = "bitsquatting"
    HYPHENATION = "hyphenation"
    VOWEL_SWAP = "vowel_swap"
    HOMOGLYPH = "homoglyph"
    TLD = "tld"


@dataclass(frozen=True)
class TypoCandidate:
    text: str
    kind: TypoKind
    original: str


_KEYBOARD_NEIGHBORS = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "o", "a": "qsz", "s": "awdx",
    "d": "sefc", "f": "drgv", "g": "fthb", "h": "gyjn", "j": "hukm",
    "k": "jil", "l": "ko", "z": "asx", "x": "zsdc", "c": "xdfv",
    "v": "cfgb", "b": "vghn", "n": "bhjm", "m": "njk",
    "0": "9", "1": "2", "2": "13", "3": "24", "4": "35", "5": "46",
    "6": "57", "7": "68", "8": "79", "9": "80",
}

_HOMOGLYPHS = {
    "l": "i1", "i": "l1", "1": "li", "o": "0", "0": "o", "m": "rn",
    "g": "q", "q": "g", "u": "v", "v": "u",
}

_VOWELS = "aeiou"
_ALLOWED = set("abcdefghijklmnopqrstuvwxyz0123456789-._")

_TLD_SWAPS = {
    "com": ["co", "cm", "om", "comm", "con", "net"],
    "net": ["ner", "nett", "com"],
    "org": ["ogr", "orgg", "com"],
    "cn": ["com.cn", "cnn"],
    "de": ["dee", "d"],
    "io": ["oi", "io.com"],
}


def _valid(label: str) -> bool:
    return (
        bool(label)
        and all(ch in _ALLOWED for ch in label)
        and not label.startswith("-")
        and not label.endswith("-")
        and ".." not in label
    )


def _emit(seen: set[str], out: list[TypoCandidate], text: str, kind: TypoKind, original: str) -> None:
    if text != original and _valid(text) and text not in seen:
        seen.add(text)
        out.append(TypoCandidate(text, kind, original))


_TYPO_MEMO = fastpath.register(
    fastpath.LruMemo("label-typos", capacity=4096, pure=True)
)


def label_typos(label: str, allow_separators: bool = False) -> list[TypoCandidate]:
    """All single-edit typo candidates of ``label``, tagged by class.

    Pure enumeration; memoised by ``(label, allow_separators)`` on the
    fast path (the workload generator asks for the same popular labels
    thousands of times).  Callers get a fresh list each time — the
    cached tuple is never exposed.
    """
    if fastpath.enabled():
        key = (label, allow_separators)
        cached = _TYPO_MEMO.get(key)
        if cached is fastpath.MISSING:
            cached = _TYPO_MEMO.put(
                key, tuple(_label_typos_impl(label, allow_separators))
            )
        return list(cached)
    return _label_typos_impl(label, allow_separators)


def _label_typos_impl(label: str, allow_separators: bool) -> list[TypoCandidate]:
    label = label.lower()
    out: list[TypoCandidate] = []
    seen: set[str] = set()
    seen_add = seen.add
    append = out.append

    # Every emitted candidate is the label with one character removed,
    # inserted, or substituted, and every substitute below is itself in
    # ``_ALLOWED`` — so when the source label is clean, the per-candidate
    # character scan in ``_valid`` can collapse to the three C-level edge
    # checks (nonempty, no edge hyphen, no "..").  A dirty label keeps
    # the full scan: an edit may remove or replace the offending char.
    clean = all(c in _ALLOWED for c in label)

    def emit(text: str, kind: TypoKind) -> None:
        if text != label and text not in seen:
            if clean:
                ok = bool(text) and text[0] != "-" and text[-1] != "-" and ".." not in text
            else:
                ok = _valid(text)
            if ok:
                seen_add(text)
                append(TypoCandidate(text, kind, label))

    for i in range(len(label)):
        # omission
        emit(label[:i] + label[i + 1 :], TypoKind.OMISSION)
        ch = label[i]
        # repetition
        emit(label[:i] + ch + label[i:], TypoKind.REPETITION)
        # transposition
        if i + 1 < len(label) and label[i] != label[i + 1]:
            swapped = label[:i] + label[i + 1] + label[i] + label[i + 2 :]
            emit(swapped, TypoKind.TRANSPOSITION)
        # keyboard replacement / insertion
        for neighbor in _KEYBOARD_NEIGHBORS.get(ch, ""):
            emit(label[:i] + neighbor + label[i + 1 :], TypoKind.REPLACEMENT)
            emit(label[:i] + neighbor + label[i:], TypoKind.INSERTION)
        # bitsquatting: flip each of the low 5 bits
        for bit in (1, 2, 4, 8, 16):
            flipped = chr(ord(ch) ^ bit)
            if flipped in _ALLOWED and flipped not in "-._":
                emit(label[:i] + flipped + label[i + 1 :], TypoKind.BITSQUATTING)
        # homoglyph
        for glyph in _HOMOGLYPHS.get(ch, ""):
            emit(label[:i] + glyph + label[i + 1 :], TypoKind.HOMOGLYPH)
        # vowel swap
        if ch in _VOWELS:
            for vowel in _VOWELS:
                if vowel != ch:
                    emit(label[:i] + vowel + label[i + 1 :], TypoKind.VOWEL_SWAP)
        # hyphenation (between characters, not at edges)
        if 0 < i < len(label):
            emit(label[:i] + "-" + label[i:], TypoKind.HYPHENATION)

    if allow_separators:
        # Separator confusion in usernames: "." <-> "_" <-> "-".
        for i, ch in enumerate(label):
            if ch in "._-":
                for other in "._-":
                    if other != ch:
                        emit(label[:i] + other + label[i + 1 :], TypoKind.REPLACEMENT)
    return out


def _split_domain(domain: str) -> tuple[str, str]:
    """Split into (second-level label, tld-with-dot).  Handles multi-label
    TLD-ish suffixes like ``.com.cn`` crudely but consistently."""
    parts = domain.lower().split(".")
    if len(parts) >= 3 and parts[-2] in ("com", "co", "org", "edu", "gov", "net"):
        return ".".join(parts[:-2]), "." + ".".join(parts[-2:])
    if len(parts) >= 2:
        return ".".join(parts[:-1]), "." + parts[-1]
    return domain, ""


def domain_typos(domain: str) -> list[TypoCandidate]:
    """Candidate typo domains of ``domain`` (SLD edits + TLD mutations)."""
    sld, tld = _split_domain(domain)
    out = [
        TypoCandidate(c.text + tld, c.kind, domain)
        for c in label_typos(sld)
    ]
    # TLD mutations (paper: "springer.com" -> "springer.comm").
    bare_tld = tld.lstrip(".")
    for swap in _TLD_SWAPS.get(bare_tld, []):
        out.append(TypoCandidate(f"{sld}.{swap}", TypoKind.TLD, domain))
    if bare_tld and "." not in bare_tld:
        out.append(TypoCandidate(f"{sld}.{bare_tld}{bare_tld[-1]}", TypoKind.TLD, domain))
    deduped: dict[str, TypoCandidate] = {}
    for cand in out:
        deduped.setdefault(cand.text, cand)
    return list(deduped.values())


def username_typos(username: str) -> list[TypoCandidate]:
    return label_typos(username.lower(), allow_separators=True)


#: Class weights when *injecting* a typo — calibrated so the detected
#: morphology matches the paper (omission ~40%, replacement/bitsquatting
#: next, the rest in the tail).
_INJECT_WEIGHTS: list[tuple[TypoKind, float]] = [
    (TypoKind.OMISSION, 0.40),
    (TypoKind.REPLACEMENT, 0.145),
    (TypoKind.BITSQUATTING, 0.125),
    (TypoKind.TRANSPOSITION, 0.09),
    (TypoKind.INSERTION, 0.08),
    (TypoKind.REPETITION, 0.07),
    (TypoKind.VOWEL_SWAP, 0.04),
    (TypoKind.HOMOGLYPH, 0.03),
    (TypoKind.HYPHENATION, 0.02),
]

_DOMAIN_INJECT_WEIGHTS = _INJECT_WEIGHTS + [(TypoKind.TLD, 0.06)]


def _sample(
    candidates: list[TypoCandidate],
    weights: list[tuple[TypoKind, float]],
    rng: RandomSource,
) -> TypoCandidate | None:
    by_kind: dict[TypoKind, list[TypoCandidate]] = {}
    for cand in candidates:
        by_kind.setdefault(cand.kind, []).append(cand)
    kinds = [k for k, _ in weights if k in by_kind]
    if not kinds:
        return None
    kind_weights = [w for k, w in weights if k in by_kind]
    kind = rng.weighted_choice(kinds, kind_weights)
    return rng.choice(by_kind[kind])


def sample_domain_typo(domain: str, rng: RandomSource) -> TypoCandidate | None:
    return _sample(domain_typos(domain), _DOMAIN_INJECT_WEIGHTS, rng)


def sample_username_typo(username: str, rng: RandomSource) -> TypoCandidate | None:
    return _sample(username_typos(username), _INJECT_WEIGHTS, rng)


def classify_typo(observed: str, original: str, for_domain: bool = False) -> TypoKind | None:
    """Return the typo class when ``observed`` is a known single-edit typo
    of ``original``; ``None`` otherwise.  This is the verification step of
    the paper's pipeline (is the non-existent name in the generated set?)."""
    candidates = domain_typos(original) if for_domain else username_typos(original)
    for cand in candidates:
        if cand.text == observed.lower():
            return cand.kind
    return None
