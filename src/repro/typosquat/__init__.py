"""Typo generation (dnstwist stand-in).

Generates candidate typos of domain labels and usernames under the fuzzing
classes the paper reports: omission, replacement, bitsquatting,
transposition, insertion, repetition, hyphenation, vowel swap, homoglyph,
and TLD mutations.  Used in two places: the workload generator *injects*
typos into typed addresses, and the analysis pipeline *verifies* that a
non-existent name is a plausible typo of a known-good one.
"""

from repro.typosquat.generate import (
    TypoCandidate,
    TypoKind,
    domain_typos,
    username_typos,
    sample_domain_typo,
    sample_username_typo,
    classify_typo,
)

__all__ = [
    "TypoCandidate",
    "TypoKind",
    "domain_typos",
    "username_typos",
    "sample_domain_typo",
    "sample_username_typo",
    "classify_typo",
]
