"""Misconfiguration-window generation.

The paper's Figure 7 characterises how long operators take to fix three
kinds of errors:

* DKIM/SPF records — slow: mean fix time ~12 days, 384 domains taking over
  a month; 25.81% of affected sender domains stay broken for the whole
  window and 33.72% break recurrently.
* MX records — fast: the vast majority fixed within one day, a small tail
  (>40 domains) broken for over a week.
* Mailbox quota — slowest: >51% of full-mailbox episodes last ≥30 days,
  mean repair ~86 days (that sampler lives here too so all duration
  modelling is in one place).

Each profile samples a set of broken windows for one entity across the
measurement window.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.clock import DAY_SECONDS, SimClock, Window
from repro.util.rng import RandomSource


@dataclass(frozen=True)
class MisconfigProfile:
    """Parameters of one misconfiguration kind."""

    name: str
    #: Fraction of entities that stay broken for the entire window.
    persistent_fraction: float
    #: Fraction that break repeatedly (2-5 episodes).
    recurrent_fraction: float
    #: Pareto parameters of the fix-time distribution, in days.
    duration_min_days: float
    duration_alpha: float
    duration_cap_days: float
    #: Episode-count range for recurrent breakage.
    episodes_range: tuple[int, int] = (2, 5)

    def sample_duration_days(self, rng: RandomSource) -> float:
        return rng.pareto_duration(
            self.duration_min_days, self.duration_alpha, cap=self.duration_cap_days
        )


#: DKIM/SPF: heavy tail around a ~10-12-day mean (Pareto(3.0, 1.2)
#: truncated at 90 days).
AUTH_PROFILE = MisconfigProfile(
    name="dkim_spf",
    persistent_fraction=0.2581,
    recurrent_fraction=0.3372,
    duration_min_days=3.0,
    duration_alpha=1.2,
    duration_cap_days=90.0,
)

#: MX: most errors fixed within a day; Pareto(min=0.08, alpha=1.35) puts
#: ~97% of mass under 1 day with a >1-week tail.
MX_PROFILE = MisconfigProfile(
    name="mx",
    persistent_fraction=0.08,
    recurrent_fraction=0.35,
    duration_min_days=0.30,
    duration_alpha=1.12,
    duration_cap_days=60.0,
    episodes_range=(3, 9),
)

#: MX breakage at *popular* domains: staffed operations never stay broken
#: long (no persistent outages, capped durations), but they break often
#: enough that, weighted by their traffic, they carry most of the T2 mass
#: — the paper's 684 domains / 4M bounces profile.
MX_HEAD_PROFILE = MisconfigProfile(
    name="mx_head",
    persistent_fraction=0.0,
    recurrent_fraction=0.80,
    duration_min_days=0.30,
    duration_alpha=1.05,
    duration_cap_days=18.0,
    episodes_range=(6, 14),
)

#: Mailbox quota: >half of episodes last 30+ days, mean ~86 days.
QUOTA_PROFILE = MisconfigProfile(
    name="quota",
    persistent_fraction=0.20,
    recurrent_fraction=0.03,
    duration_min_days=18.0,
    duration_alpha=1.25,
    duration_cap_days=450.0,
)


class MisconfigModel:
    """Samples broken windows for one entity under a profile."""

    def __init__(self, profile: MisconfigProfile) -> None:
        self.profile = profile

    def sample_windows(self, rng: RandomSource, clock: SimClock) -> list[Window]:
        """Broken windows for one affected entity across the clock window.

        The caller has already decided the entity is affected at all; this
        decides the persistent / recurrent / single-episode pattern and the
        episode durations.
        """
        span = clock.end_ts - clock.start_ts
        roll = rng.random()
        if roll < self.profile.persistent_fraction:
            return [Window(clock.start_ts, clock.end_ts)]

        episodes = 1
        if roll < self.profile.persistent_fraction + self.profile.recurrent_fraction:
            episodes = rng.randint(*self.profile.episodes_range)

        windows: list[Window] = []
        for _ in range(episodes):
            duration = self.profile.sample_duration_days(rng) * DAY_SECONDS
            duration = min(duration, span)
            start = clock.start_ts + rng.uniform(0.0, span - duration)
            windows.append(Window(start, start + duration))
        return _merge_windows(windows)


def _merge_windows(windows: list[Window]) -> list[Window]:
    """Merge overlapping windows so durations stay well defined."""
    if not windows:
        return []
    ordered = sorted(windows, key=lambda w: w.start)
    merged = [ordered[0]]
    for w in ordered[1:]:
        last = merged[-1]
        if w.start <= last.end:
            merged[-1] = Window(last.start, max(last.end, w.end))
        else:
            merged.append(w)
    return merged
