"""Time-aware resolver over the zone registry."""

from __future__ import annotations

from repro.dnssim.records import RecordType, ResolveResult, ResolveStatus
from repro.dnssim.zone import Zone
from repro.obs import metrics as obs_metrics
from repro.util.rng import RandomSource


class Resolver:
    """Answers queries against the registered zones at a point in time.

    * Unknown or unregistered-at-``t`` domains → NXDOMAIN.
    * MX queries during an MX-misconfiguration window → SERVFAIL/NO_DATA
      (the manager has published a broken delegation or deleted the
      record), which is what produces the paper's T2 hard bounces.
    * Auth (SPF/DKIM/DMARC TXT) queries during an auth-misconfiguration
      window → NO_DATA, which receiver MTAs turn into T3 rejections.

    A small transient-failure probability models flaky resolution; callers
    that retry see it heal, unlike misconfiguration windows.
    """

    def __init__(self, transient_failure_rate: float = 0.0005) -> None:
        self._zones: dict[str, Zone] = {}
        self.transient_failure_rate = transient_failure_rate
        # Telemetry (no-op unless repro.obs is enabled at construction).
        self._obs_on = obs_metrics.enabled()
        self._m_queries = obs_metrics.counter(
            "repro_dns_queries_total",
            "DNS queries answered, by record type and resolution status",
            label="result",
        )
        # Label children keyed by (rtype, status) so the per-query hot
        # path skips both the f-string format and the labels() lookup.
        self._m_query_children: dict = {}

    def register_zone(self, zone: Zone) -> None:
        key = zone.domain.lower()
        if key in self._zones:
            raise ValueError(f"zone already registered: {zone.domain}")
        self._zones[key] = zone

    def zone(self, domain: str) -> Zone | None:
        return self._zones.get(domain.lower())

    def __contains__(self, domain: str) -> bool:
        return domain.lower() in self._zones

    def __len__(self) -> int:
        return len(self._zones)

    def all_zones(self) -> list[Zone]:
        return list(self._zones.values())

    def query(
        self,
        domain: str,
        rtype: RecordType,
        t: float,
        rng: RandomSource | None = None,
    ) -> ResolveResult:
        result = self._answer(domain, rtype, t, rng)
        if self._obs_on:
            key = (rtype, result.status)
            child = self._m_query_children.get(key)
            if child is None:
                child = self._m_queries.labels(f"{rtype.value}:{result.status.value}")
                self._m_query_children[key] = child
            child.inc()
        return result

    def _answer(
        self,
        domain: str,
        rtype: RecordType,
        t: float,
        rng: RandomSource | None = None,
    ) -> ResolveResult:
        zone = self._zones.get(domain.lower())
        if zone is None or not zone.registered_at(t):
            return ResolveResult(ResolveStatus.NXDOMAIN)

        if rng is not None and rng.chance(self.transient_failure_rate):
            return ResolveResult(ResolveStatus.SERVFAIL)

        if rtype is RecordType.MX and zone.mx_broken_at(t):
            # Broken delegations surface as SERVFAIL about as often as an
            # empty answer; both are fatal for routing.
            if rng is not None and rng.chance(0.5):
                return ResolveResult(ResolveStatus.SERVFAIL)
            return ResolveResult(ResolveStatus.NO_DATA)

        if rtype is RecordType.TXT_SPF and zone.spf_broken_at(t):
            return ResolveResult(ResolveStatus.NO_DATA)
        if rtype is RecordType.TXT_DKIM and zone.dkim_broken_at(t):
            return ResolveResult(ResolveStatus.NO_DATA)
        if rtype is RecordType.TXT_DMARC and zone.dmarc_broken_at(t):
            return ResolveResult(ResolveStatus.NO_DATA)

        records = tuple(zone.records_of(rtype))
        if not records:
            return ResolveResult(ResolveStatus.NO_DATA)
        return ResolveResult(ResolveStatus.OK, records)

    def resolve_mx_host(self, domain: str, t: float, rng: RandomSource | None = None) -> str | None:
        """Convenience: preferred MX hostname, or None when unroutable."""
        result = self.query(domain, RecordType.MX, t, rng)
        if not result.ok:
            return None
        best = result.best_mx()
        return best.value if best else None
