"""Time-aware resolver over the zone registry."""

from __future__ import annotations

from typing import Iterable

from repro.core import fastpath
from repro.dnssim.records import RecordType, ResolveResult, ResolveStatus
from repro.dnssim.zone import Zone
from repro.obs import metrics as obs_metrics
from repro.util.rng import RandomSource

# Shared terminal results.  ResolveResult is frozen (and DnsRecords are
# frozen), so handing the same instance to every caller is safe.
_NXDOMAIN = ResolveResult(ResolveStatus.NXDOMAIN)
_SERVFAIL = ResolveResult(ResolveStatus.SERVFAIL)
_NO_DATA = ResolveResult(ResolveStatus.NO_DATA)

_NEG_INF = float("-inf")
_POS_INF = float("inf")


class _ZoneState:
    """Cached pure zone state for one (domain, rtype) over ``[start, end)``.

    Only the rng-free predicates are cached (registered? broken? which
    records?); the transient-failure and broken-MX coin flips stay in
    :meth:`Resolver._answer` so the caller's rng stream is consumed
    exactly as without the cache.
    """

    __slots__ = (
        "start", "end", "token", "zone", "registered", "broken", "result",
        "mx_host", "mx_all_down",
    )

    def __init__(
        self, start, end, token, zone, registered, broken, result,
        mx_host=None, mx_all_down=False,
    ) -> None:
        self.start = start
        self.end = end
        self.token = token
        #: the Zone this entry guards (None for unknown domains) — kept on
        #: the entry so cache hits skip the zone-registry lookup.
        self.zone = zone
        self.registered = registered
        self.broken = broken
        self.result = result
        #: preferred *reachable* MX hostname precomputed from ``result``
        #: (MX entries only), so ``resolve_mx_host`` skips the per-call
        #: best-MX scan.  Hosts inside an SMTP outage window are skipped
        #: (sender fail-over); ``mx_all_down`` distinguishes "every host
        #: down" (connection timeouts) from "no MX published".
        self.mx_host = mx_host
        self.mx_all_down = mx_all_down


class Resolver:
    """Answers queries against the registered zones at a point in time.

    * Unknown or unregistered-at-``t`` domains → NXDOMAIN.
    * MX queries during an MX-misconfiguration window → SERVFAIL/NO_DATA
      (the manager has published a broken delegation or deleted the
      record), which is what produces the paper's T2 hard bounces.
    * Auth (SPF/DKIM/DMARC TXT) queries during an auth-misconfiguration
      window → NO_DATA, which receiver MTAs turn into T3 rejections.

    A small transient-failure probability models flaky resolution; callers
    that retry see it heal, unlike misconfiguration windows.
    """

    def __init__(self, transient_failure_rate: float = 0.0005) -> None:
        self._zones: dict[str, Zone] = {}
        self.transient_failure_rate = transient_failure_rate
        # Interval ("TTL") cache: (domain, rtype) -> _ZoneState valid on
        # [start, end), where the interval edges are the nearest
        # misconfiguration/registration window boundaries.  Entries also
        # carry a zone state token so mutations invalidate them.
        self._state_cache: dict[tuple[str, RecordType], _ZoneState] = {}
        self._registration_epoch = 0
        self._state_stats = fastpath.CacheStats("dns-state")
        # Telemetry (no-op unless repro.obs is enabled at construction).
        self._obs_on = obs_metrics.enabled()
        self._m_queries = obs_metrics.counter(
            "repro_dns_queries_total",
            "DNS queries answered, by record type and resolution status",
            label="result",
        )
        # Label children keyed by (rtype, status) so the per-query hot
        # path skips both the f-string format and the labels() lookup.
        self._m_query_children: dict = {}

    def purge_caches(self) -> None:
        """Drop every cached zone state (checkpoint save/restore).

        Entries rebuild on demand from the zones themselves, so purging is
        always semantics-preserving — it only matters that a restored
        resolver never carries another process's cache objects.
        """
        self._state_cache.clear()

    def rebind_telemetry(self) -> None:
        """Re-attach telemetry to *this process's* registry.

        A resolver restored from a checkpoint carries detached instrument
        copies pickled in another process; rebinding swaps them for live
        ones (or the shared no-ops when :mod:`repro.obs` is disabled).
        """
        self._state_stats = fastpath.CacheStats("dns-state")
        self._obs_on = obs_metrics.enabled()
        self._m_queries = obs_metrics.counter(
            "repro_dns_queries_total",
            "DNS queries answered, by record type and resolution status",
            label="result",
        )
        self._m_query_children = {}

    def register_zone(self, zone: Zone) -> None:
        key = zone.domain.lower()
        if key in self._zones:
            raise ValueError(f"zone already registered: {zone.domain}")
        self._zones[key] = zone
        # Invalidates any cached "unknown domain" entries.
        self._registration_epoch += 1

    def zone(self, domain: str) -> Zone | None:
        return self._zones.get(domain.lower())

    def __contains__(self, domain: str) -> bool:
        return domain.lower() in self._zones

    def __len__(self) -> int:
        return len(self._zones)

    def all_zones(self) -> list[Zone]:
        return list(self._zones.values())

    def query(
        self,
        domain: str,
        rtype: RecordType,
        t: float,
        rng: RandomSource | None = None,
    ) -> ResolveResult:
        result = self._answer(domain, rtype, t, rng)
        if self._obs_on:
            self._count_query(rtype, result.status)
        return result

    def _count_query(self, rtype: RecordType, status: "ResolveStatus") -> None:
        key = (rtype, status)
        child = self._m_query_children.get(key)
        if child is None:
            child = self._m_queries.labels(f"{rtype.value}:{status.value}")
            self._m_query_children[key] = child
        child.inc()

    def _answer(
        self,
        domain: str,
        rtype: RecordType,
        t: float,
        rng: RandomSource | None = None,
    ) -> ResolveResult:
        if not fastpath.enabled():
            return self._answer_reference(domain, rtype, t, rng)
        state = self._zone_state(domain.lower(), rtype, t)
        if not state.registered:
            return _NXDOMAIN
        # rng draws below happen in exactly the same cases and order as
        # in the reference path — the cache covers only pure predicates.
        if rng is not None and rng.chance(self.transient_failure_rate):
            return _SERVFAIL
        if state.broken:
            if rtype is RecordType.MX and rng is not None and rng.chance(0.5):
                return _SERVFAIL
            return _NO_DATA
        return state.result

    def _zone_state(self, key: str, rtype: RecordType, t: float) -> _ZoneState:
        cache_key = (key, rtype)
        entry = self._state_cache.get(cache_key)
        if entry is not None:
            zone = entry.zone
            if zone is None:
                # Unknown-domain entry: valid until any zone registration.
                if entry.token == self._registration_epoch:
                    self._state_stats.hit()
                    return entry
            else:
                # Compare the token components in place (no tuple build on
                # the hit path); equivalent to token == zone.state_token().
                tok = entry.token
                if (
                    tok[0] == zone._epoch
                    and tok[1] == len(zone.registrations)
                    and tok[2] == len(zone.records)
                    and entry.start <= t < entry.end
                ):
                    self._state_stats.hit()
                    return entry
        self._state_stats.miss()
        zone = self._zones.get(key)
        if zone is None:
            entry = _ZoneState(
                _NEG_INF, _POS_INF, self._registration_epoch, None, False, False, None
            )
        else:
            entry = self._build_state(zone, rtype, t, zone.state_token())
        self._state_cache[cache_key] = entry
        return entry

    def _build_state(
        self, zone: Zone, rtype: RecordType, t: float, token
    ) -> _ZoneState:
        window_lists: list = [zone.registrations]
        points: tuple = ()
        if rtype is RecordType.MX:
            window_lists.append(zone.mx_error_windows)
            if zone.mx_host_down_windows:
                # Per-host outage edges change which host mx_route picks,
                # so the stable interval must stop at each of them.
                window_lists.extend(zone.mx_host_down_windows.values())
            points = (zone.mx_disabled_from,)
            broken = zone.mx_broken_at(t)
        elif rtype is RecordType.TXT_SPF:
            window_lists.extend((zone.spf_error_windows, zone.auth_error_windows))
            broken = zone.spf_broken_at(t)
        elif rtype is RecordType.TXT_DKIM:
            window_lists.extend((zone.dkim_error_windows, zone.auth_error_windows))
            broken = zone.dkim_broken_at(t)
        elif rtype is RecordType.TXT_DMARC:
            window_lists.append(zone.dmarc_error_windows)
            broken = zone.dmarc_broken_at(t)
        else:
            broken = False
        start, end = fastpath.stable_interval(t, tuple(window_lists), points)
        registered = zone.registered_at(t)
        result = None
        mx_host = None
        mx_all_down = False
        if registered and not broken:
            records = tuple(zone.records_of(rtype))
            result = ResolveResult(ResolveStatus.OK, records) if records else _NO_DATA
            if rtype is RecordType.MX and result.ok:
                mx_host, mx_all_down = self._select_mx(zone, result, t)
        return _ZoneState(
            start, end, token, zone, registered, broken, result, mx_host, mx_all_down
        )

    @staticmethod
    def _select_mx(
        zone: Zone, result: ResolveResult, t: float
    ) -> tuple[str | None, bool]:
        """Preferred *reachable* MX host at ``t`` plus the all-down flag.

        Without per-host outage windows this is exactly ``best_mx()``;
        with them, the sender fails over to the lowest-priority host not
        currently down (ties resolve to record order, matching
        ``best_mx``'s stable ``min``).
        """
        if not zone.mx_host_down_windows:
            best = result.best_mx()
            return (best.value if best else None), False
        up = [
            r for r in result.records
            if r.rtype is RecordType.MX and not zone.mx_host_down_at(r.value, t)
        ]
        if not up:
            return None, True
        return min(up, key=lambda r: r.priority).value, False

    def state_span(
        self, domain: str, rtype: RecordType, t: float
    ) -> tuple[float, float, Zone | None, object]:
        """``(start, end, zone, token)`` of the stable state interval at ``t``.

        Consumers caching anything derived from this resolver's answers
        (e.g. the auth evaluator) intersect these spans and re-check the
        tokens with :meth:`state_token` on every cache hit.
        """
        entry = self._zone_state(domain.lower(), rtype, t)
        return entry.start, entry.end, entry.zone, entry.token

    def state_token(self, zone: Zone | None) -> object:
        """Current validation token for a zone (or the unknown-domain set)."""
        return self._registration_epoch if zone is None else zone.state_token()

    # -- bulk lookup (columnar prepass) -------------------------------------------

    def mx_state_span(
        self, domain: str, t: float
    ) -> tuple[bool, bool, bool, str | None, bool, float, float, Zone | None, object]:
        """RNG-free MX routing state at ``t`` with its validity interval.

        Returns ``(registered, broken, ok, mx_host, all_down, start,
        end, zone, token)``.  The columnar delivery planner snapshots
        this per receiver domain and replays the transient-failure /
        broken-MX coin flips itself in exactly the order of
        :meth:`mx_route`; ``ok`` distinguishes an answerable MX set from
        a registered-but-empty zone (NO_DATA), ``all_down`` marks an
        answerable set whose every host is in an SMTP outage window
        (``mx_host`` is then None), and the ``zone``/``token`` pair lets
        the plan row be revalidated with :meth:`state_token` on every
        reuse.
        """
        state = self._zone_state(domain.lower(), RecordType.MX, t)
        ok = state.result is not None and state.result.ok
        return (
            state.registered,
            state.broken,
            ok,
            state.mx_host,
            state.mx_all_down,
            state.start,
            state.end,
            state.zone,
            state.token,
        )

    def mx_state_bulk(
        self, domains: "Iterable[str]", t: float
    ) -> dict[
        str,
        tuple[bool, bool, bool, str | None, bool, float, float, Zone | None, object],
    ]:
        """:meth:`mx_state_span` over many domains at once."""
        span = self.mx_state_span
        return {domain: span(domain, t) for domain in domains}

    def note_query(self, rtype: RecordType, status: "ResolveStatus") -> None:
        """Count a query answered by an external replayer.

        The columnar executor resolves MX state off plan rows instead of
        calling :meth:`resolve_mx_host`; it reports the outcome here so
        ``repro_dns_queries_total`` stays identical between modes."""
        if self._obs_on:
            self._count_query(rtype, status)

    def _answer_reference(
        self,
        domain: str,
        rtype: RecordType,
        t: float,
        rng: RandomSource | None = None,
    ) -> ResolveResult:
        zone = self._zones.get(domain.lower())
        if zone is None or not zone.registered_at(t):
            return ResolveResult(ResolveStatus.NXDOMAIN)

        if rng is not None and rng.chance(self.transient_failure_rate):
            return ResolveResult(ResolveStatus.SERVFAIL)

        if rtype is RecordType.MX and zone.mx_broken_at(t):
            # Broken delegations surface as SERVFAIL about as often as an
            # empty answer; both are fatal for routing.
            if rng is not None and rng.chance(0.5):
                return ResolveResult(ResolveStatus.SERVFAIL)
            return ResolveResult(ResolveStatus.NO_DATA)

        if rtype is RecordType.TXT_SPF and zone.spf_broken_at(t):
            return ResolveResult(ResolveStatus.NO_DATA)
        if rtype is RecordType.TXT_DKIM and zone.dkim_broken_at(t):
            return ResolveResult(ResolveStatus.NO_DATA)
        if rtype is RecordType.TXT_DMARC and zone.dmarc_broken_at(t):
            return ResolveResult(ResolveStatus.NO_DATA)

        records = tuple(zone.records_of(rtype))
        if not records:
            return ResolveResult(ResolveStatus.NO_DATA)
        return ResolveResult(ResolveStatus.OK, records)

    def resolve_mx_host(self, domain: str, t: float, rng: RandomSource | None = None) -> str | None:
        """Convenience: preferred reachable MX hostname, or None when
        unroutable (for any reason — unresolvable and all-hosts-down
        collapse together; :meth:`mx_route` keeps them apart)."""
        return self.mx_route(domain, t, rng)[0]

    def mx_route(
        self, domain: str, t: float, rng: RandomSource | None = None
    ) -> tuple[str | None, bool]:
        """Route one delivery: ``(preferred reachable MX host, all_down)``.

        The host is ``None`` when routing failed; ``all_down`` then
        distinguishes "DNS answered but every advertised host is inside
        an SMTP outage window" (the sender connects and times out → T14)
        from "no usable MX answer at all" (→ T2).  Draw order matches
        ``query(MX)`` exactly.
        """
        if fastpath.enabled():
            # Same state lookup, rng draws, and telemetry as query(MX), but
            # the preferred host comes precomputed off the state entry
            # instead of a per-call scan over the record set.
            state = self._zone_state(domain.lower(), RecordType.MX, t)
            if not state.registered:
                result = _NXDOMAIN
            elif rng is not None and rng.chance(self.transient_failure_rate):
                result = _SERVFAIL
            elif state.broken:
                if rng is not None and rng.chance(0.5):
                    result = _SERVFAIL
                else:
                    result = _NO_DATA
            else:
                result = state.result
            if self._obs_on:
                self._count_query(RecordType.MX, result.status)
            if result.ok:
                return state.mx_host, state.mx_all_down
            return None, False
        result = self.query(domain, RecordType.MX, t, rng)
        if not result.ok:
            return None, False
        zone = self._zones.get(domain.lower())
        return self._select_mx(zone, result, t)
