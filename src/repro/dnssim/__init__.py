"""DNS substrate.

Models exactly as much of DNS as email delivery exercises: zone existence
(registration lifecycle, NXDOMAIN for expired/typo domains), MX/A records,
and the TXT records carrying SPF/DKIM/DMARC — plus *time-varying
misconfiguration windows*, which are what the paper's Figure 7 measures
(DKIM/SPF errors fixed in 12 days on average, MX errors mostly within a
day).
"""

from repro.dnssim.records import RecordType, DnsRecord, ResolveStatus, ResolveResult
from repro.dnssim.zone import Zone
from repro.dnssim.resolver import Resolver
from repro.dnssim.misconfig import MisconfigModel, MisconfigProfile

__all__ = [
    "RecordType",
    "DnsRecord",
    "ResolveStatus",
    "ResolveResult",
    "Zone",
    "Resolver",
    "MisconfigModel",
    "MisconfigProfile",
]
