"""Zones: the unit of DNS state for one domain.

A zone carries its static records plus the *dynamic* state the paper
measures: a registration lifetime (expired domains answer NXDOMAIN — the
raw material of the squatting analysis) and misconfiguration windows
during which MX resolution or sender-authentication records are broken.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dnssim.records import DnsRecord, RecordType
from repro.util.clock import Window


@dataclass
class Zone:
    domain: str
    records: list[DnsRecord] = field(default_factory=list)
    #: When the domain is registered.  ``None`` means "never existed"
    #: (e.g. typo domains).  Expired-then-reregistered domains have a
    #: second registration window.
    registrations: list[Window] = field(default_factory=list)
    #: Windows during which the zone's MX configuration is broken
    #: (resolves to nothing / to a dangling host).
    mx_error_windows: list[Window] = field(default_factory=list)
    #: Windows during which SPF/DKIM records are broken (sender side).
    #: ``auth_error_windows`` breaks both mechanisms at once; the
    #: mechanism-specific lists break one record each.
    auth_error_windows: list[Window] = field(default_factory=list)
    spf_error_windows: list[Window] = field(default_factory=list)
    dkim_error_windows: list[Window] = field(default_factory=list)
    dmarc_error_windows: list[Window] = field(default_factory=list)
    #: Windows during which the whole zone fails to resolve (sender-side
    #: DNS outages; receivers answer T1 "sender domain does not resolve").
    dns_error_windows: list[Window] = field(default_factory=list)
    #: Registrant identifier per registration window (for the WHOIS
    #: substrate; same length as ``registrations``).
    registrants: list[str] = field(default_factory=list)
    #: From this time on, MX records are not served (a new owner who
    #: deploys no mail service).  ``None`` = records always served.
    mx_disabled_from: float | None = None
    #: Per-MX-host SMTP outage windows (hostname -> windows).  DNS still
    #: serves the full record set; the *sender* fails over to the best
    #: reachable host, so an outage on the preferred MX routes mail to a
    #: backup, and an outage covering every host strands the message
    #: (connection timeouts).  In-place mutation of an inner list must be
    #: followed by :meth:`invalidate`.
    mx_host_down_windows: dict[str, list[Window]] = field(default_factory=dict)

    #: Mutation epoch.  Bumped whenever zone state is (re)assigned so
    #: the resolver's interval cache can validate entries cheaply.
    #: Class-level default keeps it out of the dataclass fields.
    _epoch = 0

    def __setattr__(self, name: str, value) -> None:
        # Any state assignment (including replacing a window list in a
        # test) invalidates cached derived state.  In-place *mutation* of
        # a window list is not observable here — callers doing that must
        # call invalidate(); list growth is additionally caught by the
        # length checks in the resolver's cache token.
        object.__setattr__(self, name, value)
        if name != "_epoch":
            object.__setattr__(self, "_epoch", self._epoch + 1)

    def invalidate(self) -> None:
        """Mark derived caches stale after in-place window mutation."""
        self._epoch += 1

    def state_token(self) -> tuple[int, int, int]:
        """Cheap fingerprint of mutable zone state for cache validation."""
        return (self._epoch, len(self.registrations), len(self.records))

    def registered_at(self, t: float) -> bool:
        return any(w.contains(t) for w in self.registrations)

    def ever_registered_before(self, t: float) -> bool:
        return any(w.start < t for w in self.registrations)

    def mx_broken_at(self, t: float) -> bool:
        if self.mx_disabled_from is not None and t >= self.mx_disabled_from:
            return True
        return any(w.contains(t) for w in self.mx_error_windows)

    def mx_host_down_at(self, host: str, t: float) -> bool:
        """Is this specific MX host inside an SMTP outage window at ``t``?"""
        windows = self.mx_host_down_windows.get(host)
        return windows is not None and any(w.contains(t) for w in windows)

    def auth_broken_at(self, t: float) -> bool:
        """Any authentication mechanism broken at ``t``."""
        return (
            any(w.contains(t) for w in self.auth_error_windows)
            or self.spf_broken_at(t)
            or self.dkim_broken_at(t)
        )

    def spf_broken_at(self, t: float) -> bool:
        return any(w.contains(t) for w in self.spf_error_windows) or any(
            w.contains(t) for w in self.auth_error_windows
        )

    def dkim_broken_at(self, t: float) -> bool:
        return any(w.contains(t) for w in self.dkim_error_windows) or any(
            w.contains(t) for w in self.auth_error_windows
        )

    def dmarc_broken_at(self, t: float) -> bool:
        return any(w.contains(t) for w in self.dmarc_error_windows)

    def dns_broken_at(self, t: float) -> bool:
        return any(w.contains(t) for w in self.dns_error_windows)

    def registrant_at(self, t: float) -> str | None:
        for window, registrant in zip(self.registrations, self.registrants):
            if window.contains(t):
                return registrant
        return None

    def records_of(self, rtype: RecordType) -> list[DnsRecord]:
        return [r for r in self.records if r.rtype is rtype]

    def add_record(self, rtype: RecordType, value: str, priority: int = 0) -> None:
        self.records.append(DnsRecord(self.domain, rtype, value, priority))

    def has_record(self, rtype: RecordType) -> bool:
        return any(r.rtype is rtype for r in self.records)
