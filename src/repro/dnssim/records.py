"""DNS record and resolution-result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class RecordType(str, Enum):
    A = "A"
    NS = "NS"
    MX = "MX"
    TXT_SPF = "TXT_SPF"
    TXT_DKIM = "TXT_DKIM"
    TXT_DMARC = "TXT_DMARC"


@dataclass(frozen=True)
class DnsRecord:
    """A single resource record.

    ``value`` is the record payload: an IP for A, a hostname for MX/NS, the
    policy text for TXT records.  ``priority`` only applies to MX.
    """

    name: str
    rtype: RecordType
    value: str
    priority: int = 0


class ResolveStatus(str, Enum):
    OK = "OK"
    NXDOMAIN = "NXDOMAIN"
    NO_DATA = "NO_DATA"  # domain exists, no record of the requested type
    SERVFAIL = "SERVFAIL"  # transient server failure / broken delegation


@dataclass(frozen=True)
class ResolveResult:
    status: ResolveStatus
    records: tuple[DnsRecord, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return self.status is ResolveStatus.OK and bool(self.records)

    def best_mx(self) -> DnsRecord | None:
        """Lowest-priority (most preferred) MX record, if any."""
        mx = [r for r in self.records if r.rtype is RecordType.MX]
        if not mx:
            return None
        return min(mx, key=lambda r: r.priority)
