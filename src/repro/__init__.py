"""repro — a reproduction of "Bounce in the Wild" (IMC 2024).

The package has three layers:

1. **Substrates** (:mod:`repro.dnssim`, :mod:`repro.smtp`,
   :mod:`repro.dnsbl`, :mod:`repro.mta`, :mod:`repro.netsim`,
   :mod:`repro.geo`) — the mechanistic email world.
2. **Simulator** (:mod:`repro.world`, :mod:`repro.workload`,
   :mod:`repro.delivery`, :func:`repro.simulate.run_simulation`) — builds
   a synthetic 15-month delivery log in the paper's Figure 3 format.
3. **Methodology + analysis** (:mod:`repro.core`, :mod:`repro.analysis`)
   — the paper's EBRC pipeline (Drain clustering, template labelling,
   classifier, majority-vote prediction) and every measurement analysis
   behind its tables and figures.
4. **Streaming runtime** (:mod:`repro.stream`) — the same simulation as
   a lazy record stream (byte-identical to batch at equal seed), rotating
   checksummed shards, the online EBRC, and live deliverability monitors.

Quickstart::

    from repro import SimulationConfig, run_simulation
    result = run_simulation(SimulationConfig(scale=0.1, seed=7))
    print(result.dataset.summary())
"""

from repro.simulate import SimulationResult, run_simulation
from repro.stream.runner import iter_simulation, stream_simulation
from repro.world.config import SimulationConfig
from repro.delivery.dataset import DeliveryDataset
from repro.delivery.records import AttemptRecord, DeliveryRecord
from repro.core.taxonomy import (
    BounceCategory,
    BounceDegree,
    BounceType,
    CausativeEntity,
    RootCause,
)

__version__ = "1.5.0"

__all__ = [
    "SimulationConfig",
    "SimulationResult",
    "run_simulation",
    "iter_simulation",
    "stream_simulation",
    "DeliveryDataset",
    "DeliveryRecord",
    "AttemptRecord",
    "BounceType",
    "BounceCategory",
    "BounceDegree",
    "CausativeEntity",
    "RootCause",
    "__version__",
]
