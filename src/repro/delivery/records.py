"""Delivery records: the dataset format of the paper's Figure 3.

One :class:`DeliveryRecord` per email, with parallel per-attempt arrays
(``from_ip``, ``to_ip``, ``delivery_result``, ``delivery_latency``) exactly
as the paper's JSON example shows, plus Coremail's content verdict
(``email_flag``).

Simulator-side ground truth (the true bounce type per attempt, scenario
tags such as ``username_typo``) is carried in clearly-marked ``truth_*``
fields.  Analysis code must not read them; they exist so the EBRC and the
detection pipelines can be *scored*.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from repro.core.taxonomy import BounceDegree
from repro.smtp.ndr import is_success


def compute_message_id(sender: str, receiver: str, start_time: float) -> str:
    """Deterministic 16-hex id of one email.

    Derived from the record's identity fields only, so live traces,
    reconstructed traces, and shard records agree on ids across runs and
    replays without widening the Figure 3 serialisation format.
    """
    payload = f"{sender}|{receiver}|{start_time:.6f}"
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass(slots=True)
class AttemptRecord:
    t: float
    from_ip: str
    to_ip: str
    result: str
    latency_ms: int
    #: Ground truth: the bounce type the policy engine decided (None for
    #: accepted attempts).
    truth_type: str | None = None
    #: Whether the rendered NDR came from the ambiguous pool.
    ambiguous: bool = False

    @property
    def succeeded(self) -> bool:
        return is_success(self.result)


@dataclass(slots=True)
class DeliveryRecord:
    sender: str
    receiver: str
    start_time: float
    end_time: float
    email_flag: str
    attempts: list[AttemptRecord]
    #: Scenario tags: how the workload generator produced this email
    #: (ground truth for evaluation only).
    truth_tags: tuple[str, ...] = ()
    #: Latent content spamminess (ground truth).
    truth_spamminess: float = 0.0

    # -- identity helpers -----------------------------------------------------

    @property
    def sender_domain(self) -> str:
        return self.sender.rsplit("@", 1)[-1]

    @property
    def receiver_domain(self) -> str:
        return self.receiver.rsplit("@", 1)[-1]

    @property
    def receiver_user(self) -> str:
        return self.receiver.split("@", 1)[0]

    @property
    def message_id(self) -> str:
        """Deterministic trace/lookup id (see :func:`compute_message_id`)."""
        return compute_message_id(self.sender, self.receiver, self.start_time)

    # -- outcome helpers ---------------------------------------------------------

    @property
    def n_attempts(self) -> int:
        return len(self.attempts)

    @property
    def delivered(self) -> bool:
        return any(a.succeeded for a in self.attempts)

    @property
    def bounce_degree(self) -> BounceDegree:
        if not self.attempts:
            raise ValueError("record has no attempts")
        if self.attempts[0].succeeded:
            return BounceDegree.NON_BOUNCED
        if self.delivered:
            return BounceDegree.SOFT_BOUNCED
        return BounceDegree.HARD_BOUNCED

    @property
    def bounced(self) -> bool:
        return self.bounce_degree is not BounceDegree.NON_BOUNCED

    def failed_attempts(self) -> list[AttemptRecord]:
        return [a for a in self.attempts if not a.succeeded]

    def final_attempt(self) -> AttemptRecord:
        return self.attempts[-1]

    def first_failure(self) -> AttemptRecord | None:
        for a in self.attempts:
            if not a.succeeded:
                return a
        return None

    def successful_latency_ms(self) -> int | None:
        for a in self.attempts:
            if a.succeeded:
                return a.latency_ms
        return None

    # -- serialisation -------------------------------------------------------------

    def to_json_dict(self) -> dict:
        """The Figure 3 format plus ``truth_*`` extension fields."""
        return {
            "from": self.sender,
            "to": self.receiver,
            "start_time": self.start_time,
            "end_time": self.end_time,
            "from_ip": [a.from_ip for a in self.attempts],
            "to_ip": [a.to_ip for a in self.attempts],
            "delivery_result": [a.result for a in self.attempts],
            "delivery_latency": [a.latency_ms for a in self.attempts],
            "email_flag": self.email_flag,
            "truth_types": [a.truth_type for a in self.attempts],
            "truth_ambiguous": [a.ambiguous for a in self.attempts],
            "truth_tags": list(self.truth_tags),
            "truth_spamminess": self.truth_spamminess,
            "attempt_times": [a.t for a in self.attempts],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_json_dict(), separators=(",", ":"))

    @classmethod
    def from_json_dict(cls, data: dict) -> "DeliveryRecord":
        n = len(data["delivery_result"])
        times = data.get("attempt_times") or [data["start_time"]] * n
        truth_types = data.get("truth_types") or [None] * n
        truth_ambiguous = data.get("truth_ambiguous") or [False] * n
        attempts = [
            AttemptRecord(
                t=times[i],
                from_ip=data["from_ip"][i],
                to_ip=data["to_ip"][i],
                result=data["delivery_result"][i],
                latency_ms=data["delivery_latency"][i],
                truth_type=truth_types[i],
                ambiguous=bool(truth_ambiguous[i]),
            )
            for i in range(n)
        ]
        return cls(
            sender=data["from"],
            receiver=data["to"],
            start_time=data["start_time"],
            end_time=data["end_time"],
            email_flag=data["email_flag"],
            attempts=attempts,
            truth_tags=tuple(data.get("truth_tags", ())),
            truth_spamminess=float(data.get("truth_spamminess", 0.0)),
        )

    @classmethod
    def from_json(cls, line: str) -> "DeliveryRecord":
        return cls.from_json_dict(json.loads(line))
