"""Columnar batch execution for the delivery engine.

The per-email :meth:`DeliveryEngine.deliver` path re-derives the same
RNG-free facts for every email: the receiver domain's MX state, its
policy gauntlet constants, the (sender country, receiver country) network
probabilities, the recipient's status interval.  This module splits each
day's sends into chunks and runs them in two stages:

1. **Vectorized prepass** (:meth:`ColumnarExecutor._prepass`): intern the
   chunk's receiver domains, gather each email's domain-level facts from
   a numpy structured table by interned id, and evaluate every pure
   predicate (plan validity, envelope quota/size comparisons) as whole-
   column operations.  Per-address and per-sender facts ride the world's
   interval-guarded caches through one memoised pass.
2. **Sequential RNG executor** (:meth:`ColumnarExecutor.deliver_chunk`):
   walk the chunk in input order and replay the *exact* per-email draw
   sequence of the reference path against the plan — same draws, same
   order, on the same :class:`~repro.util.rng.RandomSource` streams.

The RNG draw order is the invariant: the executor inlines each primitive
(``chance``, ``lognormal``, the weighted proxy pick) as the literal
arithmetic of its reference implementation, bound directly to the
underlying :class:`random.Random` methods.  Binding survives checkpoint
restore because :meth:`RandomSource.setstate` mutates the wrapped
``Random`` in place rather than replacing it.

Stateful or rare paths are not vectorized — they drop back to the
reference code:

- plan rows invalidated by a misconfiguration/registration window or a
  zone mutation token fall back to ``engine.deliver`` for that email;
- greylist checks, fleet-wide STARTTLS learning and DNSBL membership
  run live inside the executor (they are stateful but draw-free);
- every retry past attempt 1 hands off to ``engine._run_attempts``,
  the reference retry loop, resumed from the executor's partial state;
- tracing-sampled runs never build an executor at all (the engine skips
  columnar when a tracer is attached).

Chunks never cross a simulated day boundary, so checkpoint cuts (which
happen on day edges) see exactly the same draw history under columnar
and reference execution.  ``tests/test_columnar.py`` asserts record
streams *and* RNG cursors stay byte-identical chunk by chunk.
"""

from __future__ import annotations

from bisect import bisect_right
from math import cos, exp, log, pi, sin, sqrt
from time import perf_counter
from typing import TYPE_CHECKING, Iterable, Iterator

try:  # numpy ships with the toolchain; stay importable without it.
    import numpy as np
except Exception:  # pragma: no cover - exercised only on stripped installs
    np = None  # type: ignore[assignment]

from repro.auth.evaluator import AuthFailureMode
from repro.core.taxonomy import BounceType
from repro.delivery.records import AttemptRecord, DeliveryRecord
from repro.dnssim.records import RecordType, ResolveStatus
from repro.mta.filters import SpamVerdict
from repro.mta.receiver import RecipientStatus
from repro.obs import profile as obs_profile
from repro.smtp.ndr import SUCCESS_RESULT, is_success
from repro.smtp.templates import TemplateDialect
from repro.util.clock import DAY_SECONDS
from repro.util.text import split_address
from repro.workload.spec import EmailSpec

if TYPE_CHECKING:  # pragma: no cover
    from repro.delivery.engine import DeliveryEngine

__all__ = ["ColumnarExecutor", "make_executor", "DEFAULT_CHUNK_SIZE"]

#: Upper bound on emails per chunk.  Chunks are additionally cut at
#: simulated-day boundaries; this bounds prepass working-set size.
DEFAULT_CHUNK_SIZE = 2048

#: Sentinel for "no envelope limit" on domains without a modelled service.
_NO_LIMIT = 1 << 62

#: Chunks smaller than this evaluate the prepass predicates as plain
#: comparisons: numpy's per-call fixed costs dominate below it.
_SCALAR_CUTOFF = 64

#: Local missing-key sentinel (the greylist store itself may be None).
_UNSET = object()

#: ``random.py``'s TWOPI, for the inlined ``Random.gauss`` replica.
_TWOPI = 2.0 * pi

_MX = RecordType.MX
_ST_OK = ResolveStatus.OK
_ST_NX = ResolveStatus.NXDOMAIN
_ST_NO_DATA = ResolveStatus.NO_DATA
_ST_SERVFAIL = ResolveStatus.SERVFAIL

_T1 = BounceType.T1
_T2 = BounceType.T2
_T3 = BounceType.T3
_T4 = BounceType.T4
_T5 = BounceType.T5
_T6 = BounceType.T6
_T7 = BounceType.T7
_T8 = BounceType.T8
_T9 = BounceType.T9
_T10 = BounceType.T10
_T11 = BounceType.T11
_T12 = BounceType.T12
_T13 = BounceType.T13
_T14 = BounceType.T14
_T15 = BounceType.T15
_T4_VALUE = BounceType.T4.value
_T6_VALUE = BounceType.T6.value

_T3_TAGS = ["both", "either"]
_T3_WEIGHTS = [0.43, 0.57]

_STATUS_CODE = {
    RecipientStatus.OK: 0,
    RecipientStatus.NO_SUCH_USER: 1,
    RecipientStatus.INACTIVE: 2,
    RecipientStatus.FULL: 3,
    RecipientStatus.OVER_RATE: 4,
}

#: Structured per-domain fact table gathered by interned id in the
#: prepass.  ``start``/``end`` bound the row's validity; the envelope
#: limits feed the vectorized quota/size comparisons.
_DOMAIN_DTYPE = None if np is None else np.dtype(
    [
        ("start", np.float64),
        ("end", np.float64),
        ("max_rcpt", np.int64),
        ("max_bytes", np.int64),
    ]
)


def make_executor(
    engine: "DeliveryEngine", chunk_size: int = DEFAULT_CHUNK_SIZE
) -> "ColumnarExecutor | None":
    """Build a chunk executor for ``engine``, or ``None`` when numpy is
    unavailable (the engine then stays on the per-email path)."""
    if np is None:
        return None
    return ColumnarExecutor(engine, chunk_size)


class _DomainRow:
    """Engine-lifetime, RNG-free facts of one receiver domain.

    Valid for ``start <= t < end`` (the MX zone state's interval,
    intersected with the domain's DNSBL adoption edge) while ``token``
    still matches the zone — the same guard discipline as the world's
    fast-path caches, checked per unique domain per chunk."""

    __slots__ = (
        "zone",
        "token",
        "start",
        "end",
        "registered",
        "broken",
        "mx_ok",
        "mx_host",
        "mx_all_down",
        "has_service",
        "mta",
        "ips",
        "dead",
        "country",
        "tls_mandatory",
        "dnsbl_gate",
        "dnsbl",
        "dnsbl_p",
        "rate_p",
        "enforces_auth",
        "max_rcpt",
        "max_bytes",
        "rrate_p",
        "spam_threshold",
        "spam_sigma",
        "net",
    )


class _ChunkPlan:
    """Plain-list view of the prepass output, ready for the executor.

    ``addr_entries``/``sender_entries`` keep the full ``(value, start,
    end)`` spans (not just attempt-1 validity): the executor rechecks
    them at each retry time, falling back to the reference loop when a
    retry lands outside any span."""

    __slots__ = ("rows", "domains", "sender_domains", "addr_entries",
                 "sender_entries", "fallback")

    def __init__(self, rows, domains, sender_domains, addr_entries,
                 sender_entries, fallback):
        self.rows = rows
        self.domains = domains
        self.sender_domains = sender_domains
        self.addr_entries = addr_entries
        self.sender_entries = sender_entries
        self.fallback = fallback


class ColumnarExecutor:
    """Chunked plan-and-replay executor bound to one engine.

    Owns only pure, revalidated derived state (domain plan rows, network
    plan tuples); every mutable simulation fact (RNG cursors, greylists,
    TLS learning, auth cache) stays on the engine/world, so checkpoint
    snapshot/restore works unchanged."""

    def __init__(self, engine: "DeliveryEngine", chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self._engine = engine
        self._chunk_size = chunk_size
        self._rows: dict[str, _DomainRow] = {}

    # -- chunking ----------------------------------------------------------------

    def deliver_stream(self, specs: Iterable[EmailSpec]) -> Iterator[DeliveryRecord]:
        """Consume ``specs`` lazily in day-bounded chunks.

        A chunk never spans a simulated day boundary: day edges are where
        checkpoint cuts and per-day slice hand-offs happen, and keeping
        chunks inside them guarantees the draw history at every cut is
        identical to the per-email path's."""
        start_ts = self._engine.world.clock.start_ts
        limit = self._chunk_size
        chunk: list[EmailSpec] = []
        append = chunk.append
        day = -1.0
        for spec in specs:
            spec_day = (spec.t - start_ts) // DAY_SECONDS
            if chunk and (spec_day != day or len(chunk) >= limit):
                yield from self.deliver_chunk(chunk)
                chunk = []
                append = chunk.append
            day = spec_day
            append(spec)
        if chunk:
            yield from self.deliver_chunk(chunk)

    # -- prepass -----------------------------------------------------------------

    def _row_for(self, domain: str, t: float) -> _DomainRow:
        row = self._rows.get(domain)
        if (
            row is not None
            and row.start <= t < row.end
            and self._engine.world.resolver.state_token(row.zone) == row.token
        ):
            return row
        row = self._build_row(domain, t)
        self._rows[domain] = row
        return row

    def _build_row(self, domain: str, t: float) -> _DomainRow:
        world = self._engine.world
        (registered, broken, mx_ok, mx_host, mx_all_down, start, end, zone, token) = (
            world.resolver.mx_state_span(domain, t)
        )
        row = _DomainRow()
        row.zone = zone
        row.token = token
        row.registered = registered
        row.broken = broken
        row.mx_ok = mx_ok
        row.mx_host = mx_host
        row.mx_all_down = mx_all_down
        row.net = {}
        rdomain = world.receiver_domains.get(domain)
        row.has_service = rdomain is not None
        if rdomain is None:
            row.mta = None
            row.ips = ()
            row.dead = False
            row.country = ""
            row.tls_mandatory = False
            row.dnsbl_gate = False
            row.dnsbl = None
            row.dnsbl_p = 0.0
            row.rate_p = 0.0
            row.enforces_auth = False
            row.max_rcpt = _NO_LIMIT
            row.max_bytes = _NO_LIMIT
            row.rrate_p = 0.0
            row.spam_threshold = 2.0
            row.spam_sigma = 0.0
        else:
            mta = world.receiver_mtas[domain]
            profile = mta.gauntlet_profile()
            row.mta = mta
            row.ips = rdomain.ips
            row.dead = rdomain.dead_server
            row.country = rdomain.mta_country
            row.tls_mandatory = profile.tls_mandatory
            gate = False
            if profile.has_dnsbl and profile.uses_dnsbl:
                # Split the row's validity at the adoption edge so the
                # gate is a plain flag inside the interval.
                adoption = profile.dnsbl_adoption_ts
                if t >= adoption:
                    gate = True
                    if adoption > start:
                        start = adoption
                elif adoption < end:
                    end = adoption
            row.dnsbl_gate = gate
            row.dnsbl = mta.dnsbl
            row.dnsbl_p = profile.dnsbl_reject_probability
            row.rate_p = profile.rate_limit_probability
            row.enforces_auth = profile.enforces_auth
            row.max_rcpt = profile.max_recipients
            row.max_bytes = profile.max_message_bytes
            row.rrate_p = profile.recipient_rate_probability
            row.spam_threshold = profile.spam_threshold
            row.spam_sigma = profile.spam_noise_sigma
        row.start = start
        row.end = end
        return row

    def _net_plan(self, row: _DomainRow, sender_country: str) -> tuple:
        """``(timeout_p, interrupt_p, log_median_ms, cap_ms)`` for one
        (proxy country, receiver domain) pair, cached on the row."""
        network = self._engine.world.network
        receiver_country = row.country
        log_median, cap = network.latency_plan(sender_country, receiver_country)
        plan = (
            network.timeout_probability(sender_country, receiver_country),
            network.interrupt_probability(sender_country, receiver_country),
            log_median,
            cap,
        )
        row.net[sender_country] = plan
        return plan

    def _prepass(self, specs: list[EmailSpec]) -> _ChunkPlan:
        n = len(specs)
        world = self._engine.world
        row_for = self._row_for
        status_span = world.recipient_status_span
        sender_span = world.sender_dns_broken_span
        status_code = _STATUS_CODE

        # Column extraction runs as comprehensions (C-speed iteration);
        # only the memo-filling loops below touch each element in Python,
        # and those fire once per *unique* domain/address per chunk.
        ts = [spec.t for spec in specs]
        domains = [spec.receiver.rsplit("@", 1)[-1] for spec in specs]
        sender_domains = [spec.sender.rsplit("@", 1)[-1] for spec in specs]

        dom_index: dict[str, int] = {}
        unique_rows: list[_DomainRow] = []
        addr_memo: dict[str, tuple[int, float, float]] = {}
        sender_memo: dict[str, tuple[bool, float, float]] = {}
        for spec, t, domain, sdomain in zip(specs, ts, domains, sender_domains):
            if domain not in dom_index:
                dom_index[domain] = len(unique_rows)
                unique_rows.append(row_for(domain, t))
            address = spec.receiver
            if address not in addr_memo:
                status, start, end = status_span(address, t)
                addr_memo[address] = (status_code[status], start, end)
            if sdomain not in sender_memo:
                sender_memo[sdomain] = sender_span(sdomain, t)

        addr_entries = [addr_memo[spec.receiver] for spec in specs]
        sender_entries = [sender_memo[sdomain] for sdomain in sender_domains]
        rows = [unique_rows[dom_index[domain]] for domain in domains]

        if n < _SCALAR_CUTOFF:
            # Day-bounded chunks at small simulation scales hold only a
            # handful of emails; below the cutoff the numpy round-trip
            # (fromiter, gather, tolist) costs more than it saves, so the
            # same predicates run as one fused plain comparison.
            fallback_l = [
                not (row.start <= t < row.end
                     and a[1] <= t < a[2] and s[1] <= t < s[2])
                for t, row, a, s in zip(ts, rows, addr_entries, sender_entries)
            ]
            return _ChunkPlan(
                rows,
                domains,
                sender_domains,
                addr_entries,
                sender_entries,
                fallback_l,
            )

        # Columnar stage: gather domain facts by interned id, evaluate
        # the pure predicates over whole columns.
        ids = [dom_index[domain] for domain in domains]
        ids_col = np.fromiter(ids, np.intp, n)
        t_col = np.fromiter(ts, np.float64, n)
        facts = np.fromiter(
            (
                (row.start, row.end, row.max_rcpt, row.max_bytes)
                for row in unique_rows
            ),
            dtype=_DOMAIN_DTYPE,
            count=len(unique_rows),
        )
        gathered = facts[ids_col]
        valid = (gathered["start"] <= t_col) & (t_col < gathered["end"])
        valid &= np.fromiter(
            (e[1] <= t < e[2] for t, e in zip(ts, addr_entries)), np.bool_, n
        )
        valid &= np.fromiter(
            (e[1] <= t < e[2] for t, e in zip(ts, sender_entries)), np.bool_, n
        )
        fallback = ~valid

        return _ChunkPlan(
            rows,
            domains,
            sender_domains,
            addr_entries,
            sender_entries,
            fallback.tolist(),
        )

    # -- execution ---------------------------------------------------------------

    _gap_cache: tuple[tuple, list[float]] | None = None

    def _gap_lambdas(self, config, max_budget: int) -> list[float]:
        key = (config.retry_gap_mean_s, config.retry_backoff_multiplier, max_budget)
        cached = self._gap_cache
        if cached is not None and cached[0] == key:
            return cached[1]
        table = [
            1.0 / (config.retry_gap_mean_s * config.retry_backoff_multiplier ** k)
            for k in range(max_budget)
        ]
        self._gap_cache = (key, table)
        return table

    def deliver_chunk(self, specs: list[EmailSpec]) -> list[DeliveryRecord]:
        """Plan ``specs`` then replay the reference draw sequence.

        Every branch below mirrors one reference code path draw for
        draw; comments name the mirrored primitive.  An email whose plan
        row is invalid falls back to ``engine.deliver`` *before* any
        draw; a retry whose time lands outside any plan span hands the
        partial state to ``engine._run_attempts``, so the stream stays
        aligned either way."""
        engine = self._engine
        obs_on = engine._obs_on
        if obs_on:
            chunk_t0 = perf_counter()
        plan = self._prepass(specs)
        world = engine.world
        config = world.config
        spam_budget = config.spam_attempts
        normal_budget = config.max_attempts
        nonretryable_budget = config.nonretryable_attempts
        sticky_proxies = config.proxy_policy == "sticky"
        # Per-attempt retry-gap rates: the reference computes
        # ``1.0 / (retry_gap_mean_s * backoff ** (len(attempts) - 1))``
        # fresh each time; the identical floats, precomputed per index.
        gap_lambdas = self._gap_lambdas(config, max(spam_budget, normal_budget))
        coremail = world.coremail_filter
        cm_sigma = coremail.noise_sigma
        cm_threshold = coremail.threshold
        spam_flag = SpamVerdict.SPAM.value
        normal_flag = SpamVerdict.NORMAL.value
        latency_sigma = world.network.latency_sigma
        transient_p = world.resolver.transient_failure_rate
        bank_render = world.bank.render
        note_query = world.resolver.note_query
        sender_dialect = TemplateDialect.POSTFIX

        tls_learned = engine._tls_learned
        auth_evaluate = engine._auth.evaluate
        greylist_for = engine._greylist_for
        greylists_get = engine._greylists.get
        run_attempts = engine._run_attempts
        finish_record = engine._finish_record
        deliver_reference = engine.deliver
        reject_unknown = engine._reject_unknown_service
        build_context = engine._context
        retryable_types = _retryable_types()

        engine_rng = engine.rng
        # Bound Random methods: draw-identical to the RandomSource
        # wrappers, and stable across setstate (which mutates in place).
        _rng = engine_rng._rng
        rand = _rng.random
        getrandbits = _rng.getrandbits
        rng_expovariate = _rng.expovariate
        weighted_choice = engine_rng.weighted_choice
        fleet_rand = engine._fleet_rng._rng.random
        # WeightedSampler.draw, inlined (ProxySession.pick_random).
        fleet_items, fleet_cum, fleet_total = engine._fleet.sampler_table()
        fleet_n = len(fleet_items)
        net_plan = self._net_plan

        if obs_on:
            m_attempts_labels = engine._m_attempts.labels
            m_latency_observe = engine._m_latency.observe
            m_retry_observe = engine._m_retry_wait.observe

        records: list[DeliveryRecord] = []
        add_record = records.append

        for (
            spec,
            fell_back,
            row,
            domain,
            sender_domain,
            addr_entry,
            sender_entry,
        ) in zip(
            specs,
            plan.fallback,
            plan.rows,
            plan.domains,
            plan.sender_domains,
            plan.addr_entries,
            plan.sender_entries,
        ):
            if fell_back:
                add_record(deliver_reference(spec))
                continue
            t = spec.t

            # SpamFilter.classify (coremail outgoing): one gauss draw,
            # Random.gauss inlined (the pair-caching Lambert Meertens
            # form of random.py, literally).
            z = _rng.gauss_next
            _rng.gauss_next = None
            if z is None:
                x2pi = rand() * _TWOPI
                g2rad = sqrt(-2.0 * log(1.0 - rand()))
                z = cos(x2pi) * g2rad
                _rng.gauss_next = sin(x2pi) * g2rad
            score = spec.spamminess + (0.0 + z * cm_sigma)
            if score < 0.0:
                score = 0.0
            elif score > 1.0:
                score = 1.0
            if score >= cm_threshold:
                email_flag = spam_flag
                budget = spam_budget
            else:
                email_flag = normal_flag
                budget = normal_budget
            if budget < 1:
                _budget_error(budget)

            status_code, addr_lo, addr_hi = addr_entry
            sender_is_broken, sender_lo, sender_hi = sender_entry
            row_lo = row.start
            row_hi = row.end

            attempts: list[AttemptRecord] = []
            proxy = None
            nonretryable_seen = 0
            succeeded = False
            while len(attempts) < budget:
                if proxy is None:
                    # ProxySession.pick_random == WeightedSampler.draw.
                    u = fleet_rand() * fleet_total
                    index = bisect_right(fleet_cum, u)
                    if index >= fleet_n:
                        index = fleet_n - 1
                    proxy = fleet_items[index]
                else:
                    # Retry: the plan spans were checked at spec.t only;
                    # a retry time outside any of them resumes on the
                    # reference loop with the partial state.
                    if not (
                        row_lo <= t < row_hi
                        and addr_lo <= t < addr_hi
                        and sender_lo <= t < sender_hi
                    ):
                        succeeded = run_attempts(
                            spec, budget, attempts, t, proxy, nonretryable_seen
                        )
                        break
                    # DeliveryEngine._pick_proxy(previous, last_type):
                    # sticky policies and greylist deferrals (T6) keep
                    # the previous host; otherwise pick_different.
                    if (
                        not sticky_proxies
                        and attempts[-1].truth_type != _T6_VALUE
                        and fleet_n > 1
                    ):
                        for _ in range(8):
                            u = fleet_rand() * fleet_total
                            index = bisect_right(fleet_cum, u)
                            if index >= fleet_n:
                                index = fleet_n - 1
                            candidate = fleet_items[index]
                            if candidate.index != proxy.index:
                                proxy = candidate
                                break
                from_ip = proxy.ip

                # Resolver.mx_route, replayed from the plan row.
                mx_host = None
                if not row.registered:
                    status = _ST_NX
                elif transient_p > 0.0 and (
                    transient_p >= 1.0 or rand() < transient_p
                ):
                    status = _ST_SERVFAIL
                elif row.broken:
                    status = _ST_SERVFAIL if rand() < 0.5 else _ST_NO_DATA
                elif row.mx_ok:
                    status = _ST_OK
                    mx_host = row.mx_host
                else:
                    status = _ST_NO_DATA
                if obs_on:
                    note_query(_MX, status)

                if mx_host is None and status is _ST_OK:
                    # DNS answered but every MX host is in an SMTP outage
                    # window (row.mx_all_down): connects time out → T14.
                    ndr = bank_render(
                        _T14,
                        sender_dialect,
                        engine_rng,
                        context=build_context(spec, proxy, f"mx1.{domain}"),
                    )
                    attempt = AttemptRecord(
                        t, from_ip, "", ndr.text,
                        # network.timeout_latency_ms: rng.uniform(290_000, 330_000)
                        int(290_000.0 + 40_000.0 * rand()),
                        ndr.truth_type, ndr.ambiguous,
                    )
                elif mx_host is None:
                    # Unroutable: T2 in the sender's own dialect.
                    ndr = bank_render(
                        _T2,
                        sender_dialect,
                        engine_rng,
                        context=build_context(spec, proxy, f"mx1.{domain}"),
                    )
                    attempt = AttemptRecord(
                        t, from_ip, "", ndr.text,
                        # rng.uniform(400, 4_000)
                        int(400.0 + 3600.0 * rand()), ndr.truth_type, ndr.ambiguous,
                    )
                elif not row.has_service:
                    attempt = reject_unknown(spec, proxy, t, mx_host)
                else:
                    # rng.choice(row.ips): _randbelow(n) inlined — draw
                    # getrandbits(n.bit_length()) until the value is < n.
                    ips = row.ips
                    n_ips = len(ips)
                    k = n_ips.bit_length()
                    v = getrandbits(k)
                    while v >= n_ips:
                        v = getrandbits(k)
                    to_ip = ips[v]
                    net = row.net.get(proxy.country)
                    if net is None:
                        net = net_plan(row, proxy.country)
                    timeout_p = net[0]
                    # chance(timeout_p), short-circuited by dead servers.
                    if row.dead or (
                        timeout_p > 0.0 and (timeout_p >= 1.0 or rand() < timeout_p)
                    ):
                        ndr = bank_render(
                            _T14,
                            sender_dialect,
                            engine_rng,
                            context=build_context(spec, proxy, mx_host),
                        )
                        attempt = AttemptRecord(
                            t, from_ip, to_ip, ndr.text,
                            # rng.uniform(290_000, 330_000)
                            int(290_000.0 + 40_000.0 * rand()),
                            ndr.truth_type, ndr.ambiguous,
                        )
                    else:
                        interrupt_p = net[1]
                        if interrupt_p > 0.0 and (
                            interrupt_p >= 1.0 or rand() < interrupt_p
                        ):
                            ndr = bank_render(
                                _T15,
                                sender_dialect,
                                engine_rng,
                                context=build_context(spec, proxy, mx_host),
                            )
                            attempt = AttemptRecord(
                                t, from_ip, to_ip, ndr.text,
                                # rng.uniform(8_000, 120_000)
                                int(8_000.0 + 112_000.0 * rand()),
                                ndr.truth_type, ndr.ambiguous,
                            )
                        else:
                            # The gauntlet, plan-backed.  Auth is
                            # evaluated eagerly (before the walk) exactly
                            # like the reference: draw-free, but its
                            # resolver queries feed the same caches and
                            # telemetry.
                            auth_result = None
                            if row.enforces_auth:
                                auth_result = auth_evaluate(sender_domain, from_ip, t)
                            mta = row.mta
                            # _greylist_for: created eagerly at gauntlet
                            # entry like the reference (it is an argument
                            # to mta.evaluate there), so engine snapshots
                            # stay identical even when an earlier policy
                            # check bounces first.  Method call on miss.
                            greylist = greylists_get(domain, _UNSET)
                            if greylist is _UNSET:
                                greylist = greylist_for(domain, mta)
                            bounce_type = None
                            tag = ""
                            if row.tls_mandatory and domain not in tls_learned:
                                bounce_type = _T4
                            if (
                                bounce_type is None
                                and row.dnsbl_gate
                                and row.dnsbl.is_listed(from_ip, t)
                            ):
                                p = row.dnsbl_p
                                if p > 0.0 and (p >= 1.0 or rand() < p):
                                    bounce_type = _T5
                            if bounce_type is None:
                                if greylist is not None and not greylist.check(
                                    from_ip, spec.sender, spec.receiver, t
                                ):
                                    bounce_type = _T6
                            if bounce_type is None:
                                p = row.rate_p
                                if p > 0.0 and (p >= 1.0 or rand() < p):
                                    bounce_type = _T7
                            if bounce_type is None:
                                if sender_is_broken:
                                    bounce_type = _T1
                                elif (
                                    auth_result is not None
                                    and not auth_result.authenticated
                                ):
                                    if auth_result.failure_mode is _DMARC_MODE:
                                        tag = "dmarc"
                                    else:
                                        tag = weighted_choice(_T3_TAGS, _T3_WEIGHTS)
                                    bounce_type = _T3
                            if bounce_type is None:
                                if status_code == 1:
                                    bounce_type = _T8
                                elif status_code == 2:
                                    bounce_type = _T8
                                    tag = "inactive"
                                elif status_code == 3:
                                    bounce_type = _T9
                                elif spec.recipient_count > row.max_rcpt:
                                    bounce_type = _T10
                                elif spec.size_bytes > row.max_bytes:
                                    bounce_type = _T12
                                elif status_code == 4:
                                    bounce_type = _T11
                                else:
                                    p = row.rrate_p
                                    if p > 0.0 and (p >= 1.0 or rand() < p):
                                        bounce_type = _T11
                                    else:
                                        # Receiver SpamFilter.classify
                                        # (gauss inlined as above).
                                        z = _rng.gauss_next
                                        _rng.gauss_next = None
                                        if z is None:
                                            x2pi = rand() * _TWOPI
                                            g2rad = sqrt(
                                                -2.0 * log(1.0 - rand())
                                            )
                                            z = cos(x2pi) * g2rad
                                            _rng.gauss_next = sin(x2pi) * g2rad
                                        observed = spec.spamminess + (
                                            0.0 + z * row.spam_sigma
                                        )
                                        if observed < 0.0:
                                            observed = 0.0
                                        elif observed > 1.0:
                                            observed = 1.0
                                        if observed >= row.spam_threshold:
                                            bounce_type = _T13

                            if bounce_type is None:
                                if obs_on:
                                    mta.note_accept()
                                # NetworkModel.latency_ms via latency_plan
                                # (gauss inlined as above).
                                z = _rng.gauss_next
                                _rng.gauss_next = None
                                if z is None:
                                    x2pi = rand() * _TWOPI
                                    g2rad = sqrt(-2.0 * log(1.0 - rand()))
                                    z = cos(x2pi) * g2rad
                                    _rng.gauss_next = sin(x2pi) * g2rad
                                value = exp(
                                    net[2] + latency_sigma * (0.0 + z * 1.0)
                                )
                                cap = net[3]
                                if value > cap:
                                    value = cap
                                latency = int(value)
                                if latency < 200:
                                    latency = 200
                                attempt = AttemptRecord(
                                    t, from_ip, to_ip, SUCCESS_RESULT, latency, None,
                                )
                            else:
                                user, _ = split_address(spec.receiver)
                                ndr = mta.render_reject(
                                    bounce_type,
                                    engine_rng,
                                    {
                                        "address": spec.receiver,
                                        "user": user,
                                        "domain": mta.domain,
                                        "sender_domain": sender_domain,
                                        "ip": from_ip,
                                        "mx": mx_host,
                                    },
                                    tag,
                                )
                                attempt = AttemptRecord(
                                    t, from_ip, to_ip, ndr.text,
                                    # rng.uniform(800, 12_000)
                                    int(800.0 + 11_200.0 * rand()),
                                    ndr.truth_type, ndr.ambiguous,
                                )

                # The reference loop's tail, draw for draw.
                attempts.append(attempt)
                truth = attempt.truth_type
                succeeded = True if truth is None else is_success(attempt.result)
                if obs_on:
                    m_attempts_labels(truth or "delivered").inc()
                    m_latency_observe(attempt.latency_ms)
                if succeeded:
                    break
                if truth == _T4_VALUE:
                    tls_learned.add(domain)
                if truth not in retryable_types:
                    nonretryable_seen += 1
                    if nonretryable_seen >= nonretryable_budget:
                        break
                # The reference draws the next gap even when the budget
                # is already exhausted; keep that draw.
                t = attempt.t + rng_expovariate(gap_lambdas[len(attempts) - 1])
                if obs_on:
                    m_retry_observe(t - attempt.t)
            if obs_on:
                add_record(finish_record(spec, email_flag, attempts, succeeded))
            else:
                # _finish_record without telemetry is just the construction.
                last = attempts[-1]
                add_record(
                    DeliveryRecord(
                        spec.sender,
                        spec.receiver,
                        spec.t,
                        last.t + last.latency_ms / 1000.0,
                        email_flag,
                        attempts,
                        spec.tags,
                        spec.spamminess,
                    )
                )

        if obs_on:
            obs_profile.add("delivery", perf_counter() - chunk_t0)
        return records


def _retryable_types():
    from repro.delivery.engine import _RETRYABLE_TYPES

    return _RETRYABLE_TYPES


def _budget_error(budget: int) -> None:
    from repro.delivery.engine import _require_budget

    _require_budget(budget)


_DMARC_MODE = AuthFailureMode.DMARC
