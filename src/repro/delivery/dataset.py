"""Dataset container: a collection of delivery records with the filters
and summaries the analysis layer builds on."""

from __future__ import annotations

import gzip
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Iterator

from repro.core.taxonomy import BounceDegree
from repro.delivery.records import DeliveryRecord


@dataclass
class DatasetSummary:
    n_emails: int
    n_non_bounced: int
    n_soft_bounced: int
    n_hard_bounced: int
    n_sender_domains: int
    n_receiver_domains: int
    n_attempts: int

    @property
    def first_attempt_failure_rate(self) -> float:
        bounced = self.n_soft_bounced + self.n_hard_bounced
        return bounced / self.n_emails if self.n_emails else 0.0

    @property
    def soft_recovery_rate(self) -> float:
        """Fraction of first-attempt failures eventually delivered."""
        bounced = self.n_soft_bounced + self.n_hard_bounced
        return self.n_soft_bounced / bounced if bounced else 0.0


class DeliveryDataset:
    """In-memory dataset of delivery records."""

    def __init__(self, records: list[DeliveryRecord] | None = None) -> None:
        self.records: list[DeliveryRecord] = records or []

    # -- collection protocol ----------------------------------------------------

    def append(self, record: DeliveryRecord) -> None:
        self.records.append(record)

    def extend(self, records: Iterable[DeliveryRecord]) -> None:
        self.records.extend(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DeliveryRecord]:
        return iter(self.records)

    def __getitem__(self, index):
        return self.records[index]

    # -- filters --------------------------------------------------------------------

    def filter(self, predicate: Callable[[DeliveryRecord], bool]) -> "DeliveryDataset":
        return DeliveryDataset([r for r in self.records if predicate(r)])

    def bounced(self) -> "DeliveryDataset":
        return self.filter(lambda r: r.bounced)

    def hard_bounced(self) -> "DeliveryDataset":
        return self.filter(lambda r: r.bounce_degree is BounceDegree.HARD_BOUNCED)

    def soft_bounced(self) -> "DeliveryDataset":
        return self.filter(lambda r: r.bounce_degree is BounceDegree.SOFT_BOUNCED)

    def to_domain(self, domain: str) -> "DeliveryDataset":
        return self.filter(lambda r: r.receiver_domain == domain)

    # -- summaries ---------------------------------------------------------------------

    def summary(self) -> DatasetSummary:
        degrees = Counter(r.bounce_degree for r in self.records)
        return DatasetSummary(
            n_emails=len(self.records),
            n_non_bounced=degrees.get(BounceDegree.NON_BOUNCED, 0),
            n_soft_bounced=degrees.get(BounceDegree.SOFT_BOUNCED, 0),
            n_hard_bounced=degrees.get(BounceDegree.HARD_BOUNCED, 0),
            n_sender_domains=len({r.sender_domain for r in self.records}),
            n_receiver_domains=len({r.receiver_domain for r in self.records}),
            n_attempts=sum(r.n_attempts for r in self.records),
        )

    def ndr_messages(self) -> list[str]:
        """All failure result lines (the raw material of the EBRC)."""
        out: list[str] = []
        for record in self.records:
            for attempt in record.attempts:
                if not attempt.succeeded:
                    out.append(attempt.result)
        return out

    def receiver_domain_volume(self) -> Counter:
        """InEmailRank raw material: incoming email count per domain."""
        return Counter(r.receiver_domain for r in self.records)

    # -- persistence --------------------------------------------------------------------

    @staticmethod
    def _open(path: Path, mode: str):
        """gzip transparently for ``.gz`` paths."""
        if path.suffix == ".gz":
            return gzip.open(path, mode + "t", encoding="utf-8")
        return path.open(mode, encoding="utf-8")

    def write_jsonl(self, path: str | Path) -> None:
        path = Path(path)
        with self._open(path, "w") as fh:
            for record in self.records:
                fh.write(record.to_json())
                fh.write("\n")

    @classmethod
    def iter_jsonl(cls, path: str | Path) -> Iterator[DeliveryRecord]:
        """Stream records without materialising the whole dataset."""
        path = Path(path)
        with cls._open(path, "r") as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield DeliveryRecord.from_json(line)

    @classmethod
    def read_jsonl(cls, path: str | Path) -> "DeliveryDataset":
        return cls(list(cls.iter_jsonl(path)))
