"""Coremail's proxy-MTA fleet.

34 proxies across six countries/regions (US, Hong Kong, Germany,
Singapore, United Kingdom, India).  Singapore and India carry little
volume (the paper excludes them from Figure 8 for that reason), which the
selection weights reproduce.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geo.ipaddr import IPAllocator
from repro.geo.asn import make_generic_as
from repro.util.rng import RandomSource, WeightedSampler

#: (country, proxy count, per-proxy selection weight).
PROXY_DISTRIBUTION: list[tuple[str, int, float]] = [
    ("US", 10, 1.00),
    ("HK", 8, 1.00),
    ("DE", 6, 0.95),
    ("GB", 5, 0.90),
    ("SG", 3, 0.12),
    ("IN", 2, 0.10),
]


@dataclass(frozen=True)
class ProxyMTA:
    index: int
    ip: str
    country: str

    @property
    def name(self) -> str:
        return f"proxy{self.index}.coremail-out.net"


class ProxyFleet:
    """The proxy pool plus the selection policies the engine can use."""

    def __init__(self, proxies: list[ProxyMTA], rng: RandomSource, weights: list[float]) -> None:
        if len(proxies) != len(weights):
            raise ValueError("one weight per proxy required")
        self.proxies = proxies
        self._sampler: WeightedSampler[ProxyMTA] = rng.sampler(proxies, weights)

    @classmethod
    def build(
        cls,
        allocator: IPAllocator,
        rng: RandomSource,
        n_proxies: int = 34,
        distribution: list[tuple[str, int, float]] | None = None,
    ) -> "ProxyFleet":
        distribution = distribution or PROXY_DISTRIBUTION
        total = sum(count for _, count, _ in distribution)
        proxies: list[ProxyMTA] = []
        weights: list[float] = []
        index = 0
        for country, count, weight in distribution:
            # Rescale each country's count to the requested fleet size.
            scaled = max(1, round(count * n_proxies / total))
            asn = make_generic_as(900 + index, country)
            for _ in range(scaled):
                ip = allocator.allocate(country, asn)
                proxies.append(ProxyMTA(index=index, ip=ip, country=country))
                weights.append(weight)
                index += 1
        return cls(proxies, rng, weights)

    def pick_random(self) -> ProxyMTA:
        """Coremail's policy: a fresh weighted-random proxy per attempt."""
        return self._sampler.draw()

    def pick_different(self, previous: ProxyMTA) -> ProxyMTA:
        """Random proxy other than ``previous`` (retry behaviour)."""
        if len(self.proxies) == 1:
            return previous
        for _ in range(8):
            candidate = self._sampler.draw()
            if candidate.index != previous.index:
                return candidate
        return previous

    def session(self, rng: RandomSource) -> "ProxySession":
        """A selection session drawing from ``rng`` instead of the fleet's
        own (world-build) stream.

        Each delivery engine owns one session, so proxy choices depend only
        on the engine's seed — not on how many other engines (slices,
        workers) share the fleet.  The fleet-level ``pick_random`` /
        ``pick_different`` remain for callers that don't need that
        isolation.
        """
        return ProxySession(self.proxies, self._sampler.with_rng(rng))

    @property
    def ips(self) -> list[str]:
        return [p.ip for p in self.proxies]

    def by_country(self) -> dict[str, list[ProxyMTA]]:
        out: dict[str, list[ProxyMTA]] = {}
        for p in self.proxies:
            out.setdefault(p.country, []).append(p)
        return out

    def __len__(self) -> int:
        return len(self.proxies)


class ProxySession:
    """Per-engine proxy selection over a shared fleet (see
    :meth:`ProxyFleet.session`)."""

    def __init__(self, proxies: list[ProxyMTA], sampler: WeightedSampler[ProxyMTA]) -> None:
        self.proxies = proxies
        self._sampler = sampler

    def pick_random(self) -> ProxyMTA:
        return self._sampler.draw()

    def sampler_table(self) -> tuple[list[ProxyMTA], list[float], float]:
        """``(proxies, cum_weights, total)`` of the weighted pick — the
        exact :meth:`pick_random` arithmetic, for replayers (the columnar
        delivery executor) that inline the draw.  Read-only."""
        return self._sampler.table()

    def pick_different(self, previous: ProxyMTA) -> ProxyMTA:
        if len(self.proxies) == 1:
            return previous
        for _ in range(8):
            candidate = self._sampler.draw()
            if candidate.index != previous.index:
                return candidate
        return previous
