"""The delivery engine: Coremail's distributed proxy strategy (Figure 2).

For each email the engine

1. applies Coremail's outgoing spam filter (the dataset's ``email_flag``;
   mail flagged Spam gets exactly one attempt),
2. picks a proxy MTA (randomly by default; ``sticky`` keeps the first
   proxy — the ablation of DESIGN.md),
3. resolves the receiver's MX (typo domains and broken MX configurations
   fail here, producing sender-side T2 NDRs),
4. runs the network leg (dead servers and poor routes yield T14/T15),
5. hands the session to the receiver-MTA policy gauntlet,
6. on failure, retries from a re-chosen proxy with an exponential gap —
   full budget for source-level failures, a short confirmation budget for
   recipient-level ones.

The engine learns per-domain TLS requirements the way Coremail does:
the first plaintext attempt at a mandatory-TLS domain bounces T4, and
the fleet remembers to use STARTTLS with that domain next time (STARTTLS
support is operator-level configuration, shared across all proxies).
Greylist deferrals (T6) retry from the *same* proxy: the deferred message
sits in that proxy's queue, and the queue host performs the retry — which
is also what lets the retry match the greylist tuple it was deferred on.
"""

from __future__ import annotations

from time import perf_counter
from typing import Iterable

from repro.auth.evaluator import AuthEvaluator
from repro.core import fastpath
from repro.core.taxonomy import BounceDegree, BounceType
from repro.delivery.proxies import ProxyMTA
from repro.delivery.records import AttemptRecord, DeliveryRecord, compute_message_id
from repro.mta.filters import SpamVerdict
from repro.mta.greylist import Greylist
from repro.mta.receiver import AttemptContext
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile
from repro.obs.trace import Tracer, add_attempt_spans, get_tracer
from repro.smtp.ndr import render_success
from repro.smtp.templates import TemplateDialect
from repro.util.rng import RandomSource
from repro.util.text import split_address
from repro.workload.spec import EmailSpec
from repro.world.model import WorldModel

#: Dialect of sender-side (Coremail proxy) generated error text.
_SENDER_DIALECT = TemplateDialect.POSTFIX

#: Sentinel distinguishing "no greylist store created yet" from a cached
#: ``None`` ("this domain doesn't greylist").
_GREYLIST_UNSET = object()

#: Version of the :meth:`DeliveryEngine.state_snapshot` payload.
ENGINE_STATE_VERSION = 1

def _require_budget(budget: int) -> None:
    """Reject non-positive attempt budgets with a clear error.

    :class:`SimulationConfig` validates the budgets at construction, but
    the config dataclass is mutable — without this guard a budget
    mutated below 1 surfaces as an ``IndexError`` on an empty attempt
    list deep inside delivery."""
    if budget < 1:
        raise ValueError(
            f"attempt budget must be >= 1, got {budget}: spam_attempts and "
            "max_attempts must not be lowered below 1 after "
            "SimulationConfig validation"
        )


#: Bounce types that justify a full retry budget (see ``_retryable``).
_RETRYABLE_TYPES = frozenset(
    t.value
    for t in (
        BounceType.T4,
        BounceType.T5,
        BounceType.T6,
        BounceType.T7,
        BounceType.T11,
        BounceType.T14,
        BounceType.T15,
    )
)


class DeliveryEngine:
    def __init__(
        self,
        world: WorldModel,
        rng: RandomSource,
        tracer: Tracer | None = None,
    ) -> None:
        self.world = world
        self.rng = rng
        self._auth = AuthEvaluator(world.resolver)
        #: Receiver domains known to require STARTTLS (fleet-wide: one
        #: T4 bounce teaches every proxy, mirroring operator-level
        #: TLS-policy configuration shared across the fleet).
        self._tls_learned: set[str] = set()
        #: Engine-owned proxy selection: draws come from this engine's
        #: random stream, so proxy choices are independent of any other
        #: engine sharing the world's fleet (parallel slices).  The fleet
        #: stream is kept addressable so checkpoints can snapshot and
        #: restore its cursor alongside the main engine stream.
        self._fleet_rng = rng.child("fleet")
        self._fleet = world.fleet.session(self._fleet_rng)
        #: Engine-owned greylist stores, one per receiver domain (lazily
        #: created).  Greylist state accumulates per execution slice, not
        #: in the shared world, so slices are order-independent.
        self._greylists: dict[str, object] = {}
        # Fast-path caches (captured once; the CLI toggles fastpath
        # before the engine is constructed).  Both are pure lookups:
        # per-receiver-domain policy snapshots and per-country-pair
        # network probabilities never touch the random streams.
        self._fast = fastpath.enabled()
        self._domain_snap: dict[str, list] = {}
        self._net_probs: dict[tuple[str, str], tuple[float, float]] = {}
        # Telemetry: instruments resolve to shared no-ops when repro.obs is
        # disabled (the default); the cached flag keeps the disabled cost
        # of a delivery to one boolean check.  None of this touches the
        # random streams, so traced/metered runs stay byte-identical.
        self._tracer = tracer if tracer is not None else get_tracer()
        self._obs_on = obs_metrics.enabled()
        self._m_emails = obs_metrics.counter(
            "repro_delivery_emails_total",
            "Emails delivered, by final bounce degree",
            label="degree",
        )
        self._m_attempts = obs_metrics.counter(
            "repro_delivery_attempts_total",
            "Delivery attempts, by outcome (delivered or true bounce type)",
            label="outcome",
        )
        self._m_latency = obs_metrics.histogram(
            "repro_delivery_attempt_latency_ms",
            "Per-attempt SMTP latency in milliseconds (log-2 buckets)",
            min_bound=1.0,
        )
        self._m_retry_wait = obs_metrics.histogram(
            "repro_delivery_retry_wait_seconds",
            "Scheduled backoff before a retry attempt (log-2 buckets)",
            min_bound=1.0,
        )
        # Columnar batch execution (plan-backed first attempts).  Tracing
        # samples emails with stateful side effects inside the loop, so a
        # traced engine always runs the reference path; the executor also
        # declines when numpy is unavailable.
        self._batch = None
        if fastpath.columnar_enabled() and self._tracer is None:
            from repro.delivery.columnar import make_executor

            self._batch = make_executor(self)

    # -- checkpoint support -------------------------------------------------------

    def state_snapshot(self) -> dict:
        """JSON-encodable snapshot of every simulation-mutable engine field.

        Engine construction consumes zero random draws, so restoring this
        payload into a freshly constructed engine (same world, same named
        stream) resumes delivery exactly where the snapshotted engine
        stopped.  Fast-path memos (`_domain_snap`, `_net_probs`) are pure
        lookups and rebuild naturally; they are deliberately excluded.
        """
        greylists: dict[str, dict | None] = {}
        for domain, store in self._greylists.items():
            greylists[domain] = None if store is None else store.getstate()
        return {
            "version": ENGINE_STATE_VERSION,
            "rng": self.rng.getstate(),
            "fleet_rng": self._fleet_rng.getstate(),
            "tls_learned": sorted(self._tls_learned),
            "greylists": greylists,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_snapshot` payload into this engine."""
        if state.get("version") != ENGINE_STATE_VERSION:
            raise ValueError(
                f"engine state version {state.get('version')!r} is not "
                f"{ENGINE_STATE_VERSION}"
            )
        self.rng.setstate(state["rng"])
        self._fleet_rng.setstate(state["fleet_rng"])
        self._tls_learned = set(state["tls_learned"])
        self._greylists = {
            domain: None if payload is None else Greylist.fromstate(payload)
            for domain, payload in state["greylists"].items()
        }

    # -- public API ---------------------------------------------------------------

    def deliver(self, spec: EmailSpec) -> DeliveryRecord:
        world = self.world
        config = world.config

        coremail_verdict = world.coremail_filter.classify(spec.spamminess, self.rng)
        email_flag = coremail_verdict.value
        if coremail_verdict is SpamVerdict.SPAM:
            budget = config.spam_attempts
        else:
            budget = config.max_attempts
        _require_budget(budget)

        tracer = self._tracer
        span = None
        if tracer is not None:
            span = tracer.maybe_start(
                "email",
                spec.t,
                message_id=compute_message_id(spec.sender, spec.receiver, spec.t),
                sender=spec.sender,
                receiver=spec.receiver,
                flag=email_flag,
            )

        attempts: list[AttemptRecord] = []
        succeeded = self._run_attempts(spec, budget, attempts, spec.t, None, 0, span)
        return self._finish_record(spec, email_flag, attempts, succeeded, span)

    def deliver_all(self, specs: Iterable[EmailSpec]):
        """Deliver a whole workload (any iterable, consumed lazily);
        yields records in input order.

        With the columnar switch on, specs are consumed in day-bounded
        chunks: a vectorized prepass plans each chunk, then the
        sequential executor replays the per-email draw sequence — the
        record stream and every RNG cursor are byte-identical to the
        per-email path (asserted in ``tests/test_columnar.py``)."""
        batch = self._batch
        if batch is not None:
            yield from batch.deliver_stream(specs)
            return
        if not self._obs_on:
            for spec in specs:
                yield self.deliver(spec)
            return
        for spec in specs:
            t0 = perf_counter()
            record = self.deliver(spec)
            obs_profile.add("delivery", perf_counter() - t0)
            yield record

    # -- internals ---------------------------------------------------------------------

    def _run_attempts(
        self,
        spec: EmailSpec,
        budget: int,
        attempts: list[AttemptRecord],
        t: float,
        proxy: ProxyMTA | None,
        nonretryable_seen: int,
        span=None,
        succeeded: bool = False,
    ) -> bool:
        """The retry loop, runnable from a partial state.

        ``deliver`` enters with an empty attempt list; the columnar
        executor hands off here after its plan-backed first attempt
        (``attempts`` holds the failed attempt, ``t`` the already-drawn
        retry time).  Returns whether the final attempt succeeded."""
        config = self.world.config
        rng = self.rng
        while len(attempts) < budget:
            last_type = attempts[-1].truth_type if attempts else None
            proxy = self._pick_proxy(proxy, last_type)
            if span is not None and attempts:
                previous = attempts[-1]
                span.child(
                    "retry_wait", previous.t + previous.latency_ms / 1000.0
                ).end(t)
            attempt, mx_host = self._attempt(spec, proxy, t)
            attempts.append(attempt)
            succeeded = attempt.succeeded
            if self._obs_on:
                self._m_attempts.labels(attempt.truth_type or "delivered").inc()
                self._m_latency.observe(attempt.latency_ms)
            if span is not None:
                add_attempt_spans(span, attempt, len(attempts) - 1, mx_host)
            if succeeded:
                break
            if attempt.truth_type == BounceType.T4.value:
                # Learned (fleet-wide): this domain requires STARTTLS.
                self._tls_learned.add(spec.receiver_domain)
            if not self._retryable(attempt):
                nonretryable_seen += 1
                if nonretryable_seen >= config.nonretryable_attempts:
                    break
            gap_mean = config.retry_gap_mean_s * (
                config.retry_backoff_multiplier ** (len(attempts) - 1)
            )
            t = attempt.t + rng.expovariate(1.0 / gap_mean)
            if self._obs_on:
                self._m_retry_wait.observe(t - attempt.t)
        return succeeded

    def _finish_record(
        self,
        spec: EmailSpec,
        email_flag: str,
        attempts: list[AttemptRecord],
        succeeded: bool,
        span=None,
    ) -> DeliveryRecord:
        record = DeliveryRecord(
            sender=spec.sender,
            receiver=spec.receiver,
            start_time=spec.t,
            end_time=attempts[-1].t + attempts[-1].latency_ms / 1000.0,
            email_flag=email_flag,
            attempts=attempts,
            truth_tags=spec.tags,
            truth_spamminess=spec.spamminess,
        )
        if self._obs_on or span is not None:
            # The loop breaks the moment an attempt succeeds, so the final
            # `succeeded` IS record.delivered; recomputing the degree from
            # it avoids re-parsing every attempt's reply code (the
            # bounce_degree property costs ~3us per record, which would
            # dominate the telemetry overhead).
            if not succeeded:
                degree = BounceDegree.HARD_BOUNCED.value
            elif len(attempts) == 1:
                degree = BounceDegree.NON_BOUNCED.value
            else:
                degree = BounceDegree.SOFT_BOUNCED.value
            if self._obs_on:
                self._m_emails.labels(degree).inc()
            if span is not None:
                span.set(degree=degree, n_attempts=len(attempts))
                span.end(record.end_time, status="ok" if succeeded else "error")
                self._tracer.finish(span)
        return record

    def _pick_proxy(
        self, previous: ProxyMTA | None, last_type: str | None = None
    ) -> ProxyMTA:
        fleet = self._fleet
        if previous is None:
            return fleet.pick_random()
        if self.world.config.proxy_policy == "sticky":
            return previous
        if last_type == BounceType.T6.value:
            # Greylist deferral: the message sits in `previous`'s queue and
            # that host retries, so the retry matches the deferred tuple.
            return previous
        return fleet.pick_different(previous)

    def _greylist_for(self, domain: str, mta) -> object:
        store = self._greylists.get(domain, _GREYLIST_UNSET)
        if store is _GREYLIST_UNSET:
            store = mta.new_greylist()
            self._greylists[domain] = store
        return store

    def _attempt(
        self, spec: EmailSpec, proxy: ProxyMTA, t: float
    ) -> tuple[AttemptRecord, str | None]:
        """One delivery attempt; returns the record plus the resolved MX
        host (``None`` when routing failed), which tracing annotates."""
        world = self.world
        rng = self.rng
        receiver_domain = spec.receiver_domain

        # 1. route: resolve the receiver's MX.
        mx_host, mx_all_down = world.resolver.mx_route(receiver_domain, t, rng)
        if mx_host is None:
            if mx_all_down:
                # DNS answered, but every advertised MX host is inside an
                # SMTP outage window (correlated backup-MX failure): the
                # connection attempts time out, a retryable T14.
                ndr = world.bank.render(
                    BounceType.T14,
                    _SENDER_DIALECT,
                    rng,
                    context=self._context(spec, proxy, f"mx1.{receiver_domain}"),
                )
                return AttemptRecord(
                    t=t,
                    from_ip=proxy.ip,
                    to_ip="",
                    result=ndr.text,
                    latency_ms=world.network.timeout_latency_ms(rng),
                    truth_type=ndr.truth_type,
                    ambiguous=ndr.ambiguous,
                ), None
            ndr = world.bank.render(
                BounceType.T2,
                _SENDER_DIALECT,
                rng,
                context=self._context(spec, proxy, f"mx1.{receiver_domain}"),
            )
            return AttemptRecord(
                t=t,
                from_ip=proxy.ip,
                to_ip="",
                result=ndr.text,
                latency_ms=int(rng.uniform(400, 4_000)),
                truth_type=ndr.truth_type,
                ambiguous=ndr.ambiguous,
            ), None

        snap = None
        if self._fast:
            snap = self._domain_snap.get(receiver_domain)
            if snap is None:
                snap = [world.receiver_domains.get(receiver_domain), None]
                self._domain_snap[receiver_domain] = snap
            rdomain = snap[0]
        else:
            rdomain = world.receiver_domains.get(receiver_domain)
        if rdomain is None:
            # Registered domain without a mail service we model (e.g. a
            # re-registered squat without mailboxes): treat as unknown user.
            return self._reject_unknown_service(spec, proxy, t, mx_host), mx_host

        to_ip = rng.choice(rdomain.ips)

        # 2. network leg.
        interrupt_p = None
        if self._fast:
            pair = (proxy.country, rdomain.mta_country)
            probs = self._net_probs.get(pair)
            if probs is None:
                probs = (
                    world.network.timeout_probability(*pair),
                    world.network.interrupt_probability(*pair),
                )
                self._net_probs[pair] = probs
            timeout_p, interrupt_p = probs
        else:
            timeout_p = world.network.timeout_probability(proxy.country, rdomain.mta_country)
        if rdomain.dead_server or rng.chance(timeout_p):
            ndr = world.bank.render(
                BounceType.T14,
                _SENDER_DIALECT,
                rng,
                context=self._context(spec, proxy, mx_host),
            )
            return AttemptRecord(
                t=t,
                from_ip=proxy.ip,
                to_ip=to_ip,
                result=ndr.text,
                latency_ms=world.network.timeout_latency_ms(rng),
                truth_type=ndr.truth_type,
                ambiguous=ndr.ambiguous,
            ), mx_host
        if interrupt_p is None:
            interrupt_p = world.network.interrupt_probability(
                proxy.country, rdomain.mta_country
            )
        if rng.chance(interrupt_p):
            ndr = world.bank.render(
                BounceType.T15,
                _SENDER_DIALECT,
                rng,
                context=self._context(spec, proxy, mx_host),
            )
            return AttemptRecord(
                t=t,
                from_ip=proxy.ip,
                to_ip=to_ip,
                result=ndr.text,
                latency_ms=world.network.interrupt_latency_ms(rng),
                truth_type=ndr.truth_type,
                ambiguous=ndr.ambiguous,
            ), mx_host

        # 3. the receiver's policy gauntlet.
        sender_domain = spec.sender_domain
        if snap is not None:
            mta = snap[1]
            if mta is None:
                mta = world.receiver_mtas[receiver_domain]
                snap[1] = mta
        else:
            mta = world.receiver_mtas[receiver_domain]
        auth_result = None
        if mta.policy.enforces_auth:
            auth_result = self._auth.evaluate(sender_domain, proxy.ip, t)
        ctx = AttemptContext(
            t=t,
            proxy_ip=proxy.ip,
            sender_address=spec.sender,
            receiver_address=spec.receiver,
            uses_tls=receiver_domain in self._tls_learned,
            spamminess=spec.spamminess,
            size_bytes=spec.size_bytes,
            recipient_count=spec.recipient_count,
            sender_domain_unresolvable=world.sender_dns_broken(sender_domain, t),
            auth_result=auth_result,
            recipient_status=world.recipient_status(spec.receiver, t),
            mx_host=mx_host,
        )
        decision = mta.evaluate(
            ctx, rng, greylist=self._greylist_for(receiver_domain, mta)
        )

        if decision.accepted:
            latency = world.network.latency_ms(proxy.country, rdomain.mta_country, rng)
            return AttemptRecord(
                t=t,
                from_ip=proxy.ip,
                to_ip=to_ip,
                result=render_success(),
                latency_ms=latency,
                truth_type=None,
            ), mx_host

        assert decision.ndr is not None
        return AttemptRecord(
            t=t,
            from_ip=proxy.ip,
            to_ip=to_ip,
            result=decision.ndr.text,
            latency_ms=int(rng.uniform(800, 12_000)),
            truth_type=decision.ndr.truth_type,
            ambiguous=decision.ndr.ambiguous,
        ), mx_host

    def _reject_unknown_service(
        self, spec: EmailSpec, proxy: ProxyMTA, t: float, mx_host: str
    ) -> AttemptRecord:
        ndr = self.world.bank.render(
            BounceType.T8,
            TemplateDialect.GENERIC,
            self.rng,
            context=self._context(spec, proxy, mx_host),
        )
        return AttemptRecord(
            t=t,
            from_ip=proxy.ip,
            to_ip="",
            result=ndr.text,
            latency_ms=int(self.rng.uniform(900, 9_000)),
            truth_type=ndr.truth_type,
            ambiguous=ndr.ambiguous,
        )

    def _context(self, spec: EmailSpec, proxy: ProxyMTA, mx_host: str) -> dict[str, str]:
        user, domain = split_address(spec.receiver)
        return {
            "address": spec.receiver,
            "user": user,
            "domain": domain,
            "sender_domain": spec.sender_domain,
            "ip": proxy.ip,
            "mx": mx_host,
        }

    @staticmethod
    def _retryable(attempt: AttemptRecord) -> bool:
        """Source-level and transport failures justify a full retry budget;
        recipient-level rejections only get a confirmation retry."""
        return attempt.truth_type in _RETRYABLE_TYPES
