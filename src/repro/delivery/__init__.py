"""The sender side: Coremail-style distributed proxy delivery.

:class:`~repro.delivery.engine.DeliveryEngine` implements the strategy of
Figure 2 of the paper: pick a proxy MTA, resolve the receiver's MX, run the
SMTP session (network permitting) through the receiver's policy gauntlet,
and on failure retry from a (by default randomly) re-chosen proxy — at most
once for mail Coremail itself flagged as Spam.  Each email yields one
:class:`~repro.delivery.records.DeliveryRecord` in the dataset format of
Figure 3.
"""

from repro.delivery.proxies import ProxyMTA, ProxyFleet, PROXY_DISTRIBUTION
from repro.delivery.records import AttemptRecord, DeliveryRecord
from repro.delivery.dataset import DeliveryDataset
from repro.delivery.engine import DeliveryEngine

__all__ = [
    "ProxyMTA",
    "ProxyFleet",
    "PROXY_DISTRIBUTION",
    "AttemptRecord",
    "DeliveryRecord",
    "DeliveryDataset",
    "DeliveryEngine",
]
