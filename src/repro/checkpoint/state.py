"""Per-slice temporal progress and day-bounded slice execution.

The slice plan (:func:`repro.parallel.partition.plan_slices`) is a pure
function of the config, so temporal progress is a dict keyed by slice
key.  Each entry is one of:

``{"status": "fresh", "n_delivered": 0}``
    The slice has not started; a fresh engine picks it up from the top.

``{"status": "partial", "n_delivered": N, "engine": ..., ["resume_day": D]}``
    The slice delivered its first ``N`` specs; ``engine`` is the
    :meth:`repro.delivery.engine.DeliveryEngine.state_snapshot` payload
    (RNG cursors, greylist tuples, learned STARTTLS).  Traffic slices
    also record ``resume_day`` — send times never cross day boundaries,
    so they resume by generating days ``[resume_day, day_end)`` with
    zero regeneration.  Campaign/extra slices resume by regenerating
    their (cheap, deterministic) spec list and skipping the first ``N``.

``{"status": "done", "n_delivered": N}``
    The slice is exhausted; later segments skip it entirely.

Engine construction consumes zero random draws and child-stream seeds
derive from static parents, so restoring an engine snapshot into a
freshly built engine continues every draw sequence exactly where the
snapshotted engine stopped — the property the byte-identity tests in
``tests/test_checkpoint.py`` pin down component by component.
"""

from __future__ import annotations

from typing import Iterator

from repro.delivery.records import DeliveryRecord
from repro.parallel.partition import SimSlice, plan_slices
from repro.util.rng import RandomSource
from repro.workload.spec import EmailSpec
from repro.world.config import SimulationConfig
from repro.world.model import WorldModel


def fresh_progress(config: SimulationConfig, n_extra: int = 0) -> dict[str, dict]:
    """Initial progress for a run that has not delivered anything."""
    return {
        s.key: {"status": "fresh", "n_delivered": 0}
        for s in plan_slices(config, n_extra)
    }


def validate_progress(progress: dict, slices: list[SimSlice]) -> None:
    """Progress keys must match the slice plan exactly — a mismatch means
    the checkpoint belongs to a different config (or extra-workload set)."""
    expected = {s.key for s in slices}
    got = set(progress)
    if expected != got:
        missing = sorted(expected - got)
        surplus = sorted(got - expected)
        raise ValueError(
            f"progress does not match the slice plan "
            f"(missing: {missing[:3]}, unknown: {surplus[:3]})"
        )


def _until_ts(world: WorldModel, until_day: int) -> float:
    clock = world.clock
    if until_day >= clock.n_days:
        return float("inf")
    return clock.day_start(until_day)


def run_slice_segment(
    world: WorldModel,
    rng: RandomSource,
    sim_slice: SimSlice,
    entry: dict,
    until_day: int,
    out: dict[str, dict],
    extra_specs: list[EmailSpec] | None = None,
) -> Iterator[DeliveryRecord] | None:
    """One slice's contribution to the segment ending at ``until_day``.

    Returns a record generator, or ``None`` when the slice contributes
    nothing this segment (already done, or entirely after the cut).  In
    both cases the slice's post-segment progress lands in ``out`` — for a
    generator, only once it has been *fully consumed* (the canonical
    merge consumes every stream to exhaustion, so by the time the merged
    stream ends, ``out`` is complete).
    """
    key = sim_slice.key
    if entry["status"] == "done":
        out[key] = entry
        return None
    if sim_slice.kind == "traffic":
        return _traffic_segment(world, rng, sim_slice, entry, until_day, out)
    return _spec_list_segment(
        world, rng, sim_slice, entry, until_day, out, extra_specs
    )


def _traffic_segment(
    world: WorldModel,
    rng: RandomSource,
    sim_slice: SimSlice,
    entry: dict,
    until_day: int,
    out: dict[str, dict],
) -> Iterator[DeliveryRecord] | None:
    key = sim_slice.key
    start_day = (
        entry["resume_day"] if entry["status"] == "partial" else sim_slice.day_start
    )
    stop_day = min(sim_slice.day_end, until_day)
    if start_day >= stop_day:
        out[key] = entry
        return None

    def records() -> Iterator[DeliveryRecord]:
        from repro.delivery.engine import DeliveryEngine
        from repro.workload.traffic import TrafficGenerator

        engine = DeliveryEngine(world, rng.child(f"engine/{key}"))
        if entry["status"] == "partial":
            engine.restore_state(entry["engine"])
        traffic = TrafficGenerator(world, rng.child("traffic"))
        n = entry["n_delivered"]
        for record in engine.deliver_all(traffic.iter_day_range(start_day, stop_day)):
            n += 1
            yield record
        if stop_day >= sim_slice.day_end:
            out[key] = {"status": "done", "n_delivered": n}
        else:
            out[key] = {
                "status": "partial",
                "n_delivered": n,
                "resume_day": stop_day,
                "engine": engine.state_snapshot(),
            }

    return records()


def _spec_list_segment(
    world: WorldModel,
    rng: RandomSource,
    sim_slice: SimSlice,
    entry: dict,
    until_day: int,
    out: dict[str, dict],
    extra_specs: list[EmailSpec] | None,
) -> Iterator[DeliveryRecord]:
    """Campaign and extra slices: a materialized, time-sorted spec list,
    cut at the first spec past the boundary.  The list regenerates
    deterministically from fresh child streams, so skipping the first
    ``n_delivered`` specs replays exactly what earlier segments sent."""
    key = sim_slice.key
    until_ts = _until_ts(world, until_day)

    def records() -> Iterator[DeliveryRecord]:
        from repro.delivery.engine import DeliveryEngine

        if sim_slice.kind == "campaign":
            from repro.workload.attackers import AttackerGenerator

            domains = world.attacker_domains()
            generator = AttackerGenerator(world, rng.child("attackers"))
            specs = generator.domain_specs(domains[sim_slice.campaign_index])
        elif sim_slice.specs is not None:
            specs = list(sim_slice.specs)
        else:
            assert extra_specs is not None, f"extra slice {key} without specs"
            specs = extra_specs
        start = entry["n_delivered"]
        stop = start
        while stop < len(specs) and specs[stop].t < until_ts:
            stop += 1
        if stop > start:
            engine = DeliveryEngine(world, rng.child(f"engine/{key}"))
            if entry["status"] == "partial":
                engine.restore_state(entry["engine"])
            yield from engine.deliver_all(specs[start:stop])
            if stop >= len(specs):
                out[key] = {"status": "done", "n_delivered": stop}
            else:
                out[key] = {
                    "status": "partial",
                    "n_delivered": stop,
                    "engine": engine.state_snapshot(),
                }
        elif stop >= len(specs):
            # Nothing left at all (e.g. an empty campaign): mark done so
            # later segments skip the regeneration.
            out[key] = {"status": "done", "n_delivered": stop}
        else:
            out[key] = entry

    return records()
