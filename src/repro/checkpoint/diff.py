"""Per-table deltas between two delivery runs (baseline vs branch).

Both runs stream through the mergeable :class:`repro.analytics.suite.
TableSuite` — the same accumulator the CI analytics-diff job pins to the
batch oracle — and the resulting payloads are diffed table by table.
The renderer keeps the paper's table structure (bounce types, blocklist
behaviour, misconfiguration episodes) but every count column becomes
``baseline / branch / delta``, which is the artifact `repro diff-runs`
prints and the checkpoint-chain CI job uploads.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.report import pct, render_table


def table_payload(path: str | Path, top: int = 10) -> dict:
    """The table-suite payload of a delivery log (JSONL file, ``.gz``, or
    shard directory)."""
    from repro.analytics import TableSuite
    from repro.stream.sink import iter_delivery_log

    suite = TableSuite()
    suite.observe_many(iter_delivery_log(path))
    return suite.tables(top)


def _delta(a: float, b: float) -> str:
    d = b - a
    if isinstance(a, int) and isinstance(b, int):
        return f"{d:+d}" if d else "0"
    return f"{d:+.4f}" if d else "0"


def diff_payloads(payload_a: dict, payload_b: dict, top: int = 10) -> dict:
    """Structured deltas between two table payloads (JSON-encodable)."""
    ov_a, ov_b = payload_a["overview"], payload_b["overview"]
    overview = {
        key: {"a": ov_a[key], "b": ov_b[key], "delta": ov_b[key] - ov_a[key]}
        for key in ("n_emails", "n_non", "n_soft", "n_hard")
    }

    types_a = dict(payload_a["types"]["rows"])
    types_b = dict(payload_b["types"]["rows"])
    type_rows = []
    for name in sorted(set(types_a) | set(types_b)):
        a, b = types_a.get(name, 0), types_b.get(name, 0)
        type_rows.append({"type": name, "a": a, "b": b, "delta": b - a})

    bl_a, bl_b = payload_a["blocklist"], payload_b["blocklist"]
    blocklist = {
        key: {"a": bl_a[key], "b": bl_b[key], "delta": bl_b[key] - bl_a[key]}
        for key in ("blocked_normal", "blocked_spam", "n_greylist_domains")
    }
    blocklist["recovery_rate"] = {
        "a": bl_a["recovery_rate"],
        "b": bl_b["recovery_rate"],
        "delta": bl_b["recovery_rate"] - bl_a["recovery_rate"],
    }

    mis_a, mis_b = payload_a["misconfig"], payload_b["misconfig"]
    misconfig = {}
    for kind in ("auth", "mx", "quota"):
        sa, sb = mis_a[kind], mis_b[kind]
        misconfig[kind] = {
            key: {"a": sa[key], "b": sb[key], "delta": sb[key] - sa[key]}
            for key in ("n_episodes", "n_entities", "mean_days")
        }

    dom_a = {row[0]: row for row in payload_a["top_domains"]}
    dom_b = {row[0]: row for row in payload_b["top_domains"]}
    domains = []
    for name in sorted(set(dom_a) | set(dom_b)):
        va = dom_a.get(name)
        vb = dom_b.get(name)
        domains.append(
            {
                "domain": name,
                "volume_a": va[1] if va else 0,
                "volume_b": vb[1] if vb else 0,
                "hard_a": va[2] if va else 0.0,
                "hard_b": vb[2] if vb else 0.0,
            }
        )

    return {
        "overview": overview,
        "types": type_rows,
        "blocklist": blocklist,
        "misconfig": misconfig,
        "top_domains": domains,
        "n_records": {"a": payload_a["n_records"], "b": payload_b["n_records"]},
    }


def render_diff(
    diff: dict, label_a: str = "baseline", label_b: str = "branch"
) -> str:
    """Plain-text table-delta report for a :func:`diff_payloads` result."""
    parts: list[str] = []
    parts.append(f"== Run delta: {label_a} vs {label_b} ==")
    ov = diff["overview"]
    parts.append(
        render_table(
            "overview",
            ["metric", label_a, label_b, "delta"],
            [
                [key, cell["a"], cell["b"], _delta(cell["a"], cell["b"])]
                for key, cell in ov.items()
            ],
        )
    )

    parts.append("")
    parts.append(
        render_table(
            "bounce types (Table 1)",
            ["type", label_a, label_b, "delta"],
            [
                [row["type"], row["a"], row["b"], _delta(row["a"], row["b"])]
                for row in diff["types"]
                if row["a"] or row["b"]
            ],
        )
    )

    parts.append("")
    bl = diff["blocklist"]
    parts.append(
        render_table(
            "blocklists and filters (Fig 6)",
            ["metric", label_a, label_b, "delta"],
            [
                ["blocked (normal)", bl["blocked_normal"]["a"],
                 bl["blocked_normal"]["b"],
                 _delta(bl["blocked_normal"]["a"], bl["blocked_normal"]["b"])],
                ["blocked (spam)", bl["blocked_spam"]["a"],
                 bl["blocked_spam"]["b"],
                 _delta(bl["blocked_spam"]["a"], bl["blocked_spam"]["b"])],
                ["greylisting domains", bl["n_greylist_domains"]["a"],
                 bl["n_greylist_domains"]["b"],
                 _delta(bl["n_greylist_domains"]["a"],
                        bl["n_greylist_domains"]["b"])],
                ["recovery rate", pct(bl["recovery_rate"]["a"]),
                 pct(bl["recovery_rate"]["b"]),
                 _delta(bl["recovery_rate"]["a"], bl["recovery_rate"]["b"])],
            ],
        )
    )

    parts.append("")
    rows = []
    for kind, stats in diff["misconfig"].items():
        rows.append(
            [
                kind,
                stats["n_episodes"]["a"],
                stats["n_episodes"]["b"],
                _delta(stats["n_episodes"]["a"], stats["n_episodes"]["b"]),
                f"{stats['mean_days']['a']:.3f}",
                f"{stats['mean_days']['b']:.3f}",
                _delta(stats["mean_days"]["a"], stats["mean_days"]["b"]),
            ]
        )
    parts.append(
        render_table(
            "misconfiguration episodes (Fig 7)",
            ["kind", f"n {label_a}", f"n {label_b}", "delta",
             f"mean-d {label_a}", f"mean-d {label_b}", "delta"],
            rows,
        )
    )

    parts.append("")
    parts.append(
        render_table(
            "top receiver domains (Table 3)",
            ["domain", f"emails {label_a}", f"emails {label_b}",
             f"hard {label_a}", f"hard {label_b}"],
            [
                [row["domain"], row["volume_a"], row["volume_b"],
                 pct(row["hard_a"]), pct(row["hard_b"])]
                for row in diff["top_domains"]
            ],
        )
    )

    parts.append("")
    nr = diff["n_records"]
    parts.append(f"records: {label_a}={nr['a']}  {label_b}={nr['b']}")
    return "\n".join(parts) + "\n"


def diff_runs(
    path_a: str | Path,
    path_b: str | Path,
    *,
    top: int = 10,
    label_a: str = "baseline",
    label_b: str = "branch",
) -> tuple[dict, str]:
    """Stream both runs, diff their table payloads, and render the
    report; returns ``(structured_diff, rendered_text)``."""
    payload_a = table_payload(path_a, top)
    payload_b = table_payload(path_b, top)
    diff = diff_payloads(payload_a, payload_b, top)
    return diff, render_diff(diff, label_a, label_b)
