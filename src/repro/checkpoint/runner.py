"""Serial segment execution: one process, the canonical merge.

A *segment* runs every slice from its recorded progress up to a day
boundary.  The merge is the same stable ``heapq.merge`` over slices in
plan order that the uninterrupted streaming runner uses — and because a
stable merge of per-slice prefixes is a prefix of the full merge, the
concatenated record streams of chained segments are byte-identical to
one uninterrupted run (asserted against the differential oracle in
``tests/test_checkpoint.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.checkpoint.state import run_slice_segment, validate_progress
from repro.delivery.records import DeliveryRecord
from repro.parallel.partition import plan_slices
from repro.stream.runner import materialize_extra_workloads
from repro.util.rng import RandomSource
from repro.world.model import WorldModel

WorkloadFn = Callable


@dataclass
class SegmentRun:
    """One segment's record stream plus its post-segment progress.

    ``records`` must be consumed to exhaustion before ``progress`` is
    complete (per-slice finalization happens when each slice's stream
    ends); :meth:`finish` drains any remainder and returns the progress
    dict re-ordered to the slice plan.
    """

    world: WorldModel
    until_day: int
    records: Iterator[DeliveryRecord]
    _out: dict[str, dict] = field(default_factory=dict)
    _plan_keys: list[str] = field(default_factory=list)

    def finish(self) -> dict[str, dict]:
        for _ in self.records:  # pragma: no cover - callers usually drained
            pass
        return {key: self._out[key] for key in self._plan_keys}

    @property
    def progress(self) -> dict[str, dict]:
        return self.finish()


def run_segment(
    world: WorldModel,
    progress: dict[str, dict],
    until_day: int,
    extra_workloads: list[WorkloadFn] | None = None,
) -> SegmentRun:
    """Run every slice from ``progress`` up to (exclusive) ``until_day``.

    ``run_segment(world, p, clock.n_days)`` finishes the run; anything
    past the measurement window raises :class:`ValueError`.
    """
    clock = world.clock
    if until_day > clock.n_days:
        raise ValueError(
            f"until_day {until_day} is past the measurement window "
            f"({clock.n_days} days)"
        )
    config = world.config
    rng = RandomSource(config.seed, name="sim")
    extra_specs = materialize_extra_workloads(world, rng, extra_workloads)
    slices = plan_slices(config, len(extra_specs))
    validate_progress(progress, slices)
    out: dict[str, dict] = {}
    streams: list[Iterator[DeliveryRecord]] = []
    for sim_slice in slices:
        stream = run_slice_segment(
            world,
            rng,
            sim_slice,
            progress[sim_slice.key],
            until_day,
            out,
            extra_specs=(
                extra_specs[sim_slice.extra_index]
                if sim_slice.kind == "extra" and sim_slice.specs is None
                else None
            ),
        )
        if stream is not None:
            streams.append(stream)
    merged = heapq.merge(*streams, key=lambda r: r.start_time)
    return SegmentRun(
        world=world,
        until_day=until_day,
        records=merged,
        _out=out,
        _plan_keys=[s.key for s in slices],
    )
