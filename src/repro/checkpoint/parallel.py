"""Parallel segment execution: the PR 3 worker protocol, cut at a day.

Workers receive their slices *with* per-slice progress payloads, rebuild
the world (from the config, or from the checkpoint directory when
resuming a branch — a branched world is no longer derivable from its
config), run each slice's segment through the ordinary serial machinery
(:func:`repro.checkpoint.state.run_slice_segment`), and write one
checksummed shard directory per slice.  Results return over the
filesystem exactly like :mod:`repro.parallel.worker`: ``worker-NN.json``
carries record counts plus every slice's post-segment progress payload,
``worker-NN.error.txt`` plus exit 1 reports failures.

The parent merges the per-slice directories with
``MultiShardReader(order="time")`` in slice-plan order — the same stable
tie-breaking as the serial heap merge — so segments are byte-identical
at 1, 2, or any number of workers.
"""

from __future__ import annotations

import json
import multiprocessing
import shutil
import sys
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator

from repro.delivery.records import DeliveryRecord
from repro.parallel.partition import SimSlice, assign_slices, plan_slices
from repro.parallel.runner import _join_workers, _load_result, _terminate
from repro.parallel.worker import error_path, result_path, slice_dir
from repro.world.config import SimulationConfig
from repro.world.model import WorldModel


def segment_fingerprint(
    config: SimulationConfig, sim_slice: SimSlice, until_day: int, options: dict
) -> dict:
    """Integrity tag for one slice's segment shard directory."""
    from repro.parallel.resume import config_digest

    return {
        "kind": "checkpoint-segment",
        "config": config_digest(config),
        "slice": sim_slice.key,
        "until_day": until_day,
        "shard_size": options.get("shard_size", 100_000),
        "compress": options.get("compress", False),
    }


def run_segment_worker(
    worker_index: int,
    source: tuple[str, object],
    bucket: list[tuple[SimSlice, dict]],
    shard_root: str,
    options: dict,
) -> None:
    """Process entry point: run each ``(slice, progress)`` up to the cut.

    ``source`` is ``("config", SimulationConfig)`` for a fresh or
    config-derivable world and ``("checkpoint", path)`` for a branched
    one (workers skip the deep-digest verify — the parent did it once).
    """
    root = Path(shard_root)
    current: str | None = None
    try:
        from repro.checkpoint.state import run_slice_segment
        from repro.parallel.worker import _apply_fail_hook
        from repro.stream.sink import ShardWriter, atomic_write_text
        from repro.util.rng import RandomSource
        from repro.world.model import build_world

        until_day = options["until_day"]
        t0 = time.perf_counter()
        kind, payload = source
        if kind == "config":
            world = build_world(payload)
        else:
            from repro.checkpoint.store import load_checkpoint

            world = load_checkpoint(payload, verify=False).world
        rng = RandomSource(world.config.seed, name="sim")
        out: dict[str, dict] = {}
        counts: dict[str, int] = {}
        for sim_slice, entry in bucket:
            current = sim_slice.key
            _apply_fail_hook(sim_slice.key)
            stream = run_slice_segment(
                world, rng, sim_slice, entry, until_day, out
            )
            with ShardWriter(
                slice_dir(root, sim_slice.index),
                shard_size=options.get("shard_size", 100_000),
                compress=options.get("compress", False),
                fingerprint=segment_fingerprint(
                    world.config, sim_slice, until_day, options
                ),
            ) as writer:
                if stream is not None:
                    for record in stream:
                        writer.write(record)
            counts[sim_slice.key] = writer.n_written
        current = None
        result = {
            "worker": worker_index,
            "slices": [s.key for s, _ in bucket],
            "n_records": counts,
            "progress": out,
            "elapsed_s": time.perf_counter() - t0,
        }
        atomic_write_text(result_path(root, worker_index), json.dumps(result))
    except BaseException:
        where = f"slice {current}" if current else "setup"
        error_path(root, worker_index).write_text(
            f"worker {worker_index} failed in {where}\n" + traceback.format_exc(),
            encoding="utf-8",
        )
        sys.exit(1)


@dataclass
class ParallelSegment:
    """A parallel segment's merged record stream and progress."""

    world: WorldModel
    until_day: int
    shard_root: Path
    progress: dict[str, dict]
    n_records: int
    elapsed_s: float
    owns_shards: bool
    _active: list[SimSlice] = field(default_factory=list)

    def iter_records(self, verify: bool = False) -> Iterator[DeliveryRecord]:
        """The segment's records, canonically merged (empty segment-wide
        output yields nothing)."""
        if not self._active:
            return iter(())
        from repro.stream.sink import MultiShardReader

        reader = MultiShardReader(
            [slice_dir(self.shard_root, s.index) for s in self._active],
            order="time",
        )
        return reader.iter_records(verify=verify)

    def close(self) -> None:
        if self.owns_shards and self.shard_root.exists():
            shutil.rmtree(self.shard_root, ignore_errors=True)

    def __enter__(self) -> "ParallelSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def run_segment_parallel(
    world: WorldModel,
    progress: dict[str, dict],
    until_day: int,
    workers: int,
    *,
    checkpoint_path: str | Path | None = None,
    shard_root: str | Path | None = None,
    shard_size: int = 100_000,
    compress: bool = False,
    timeout: float | None = None,
) -> ParallelSegment:
    """Run one segment across ``workers`` processes.

    ``checkpoint_path`` tells workers to restore the world from that
    directory instead of rebuilding it from the config — required for
    branched checkpoints, whose worlds carry interventions the config
    knows nothing about.
    """
    from repro.checkpoint.state import validate_progress

    clock = world.clock
    if until_day > clock.n_days:
        raise ValueError(
            f"until_day {until_day} is past the measurement window "
            f"({clock.n_days} days)"
        )
    config = world.config
    slices = plan_slices(config)
    validate_progress(progress, slices)
    owns = shard_root is None
    root = Path(tempfile.mkdtemp(prefix="repro-ckpt-") if owns else shard_root)
    root.mkdir(parents=True, exist_ok=True)

    active = [s for s in slices if progress[s.key]["status"] != "done"]
    new_progress = dict(progress)
    options = {
        "until_day": until_day,
        "shard_size": shard_size,
        "compress": compress,
    }
    source: tuple[str, object] = (
        ("checkpoint", str(checkpoint_path))
        if checkpoint_path is not None
        else ("config", config)
    )
    t0 = time.perf_counter()
    buckets = assign_slices(active, workers)
    n_records = 0
    if buckets:
        ctx = multiprocessing.get_context("spawn")
        procs = []
        for i, bucket in enumerate(buckets):
            payload = [(s, progress[s.key]) for s in bucket]
            proc = ctx.Process(
                target=run_segment_worker,
                args=(i, source, payload, str(root), options),
                daemon=True,
            )
            proc.start()
            procs.append(proc)
        try:
            _join_workers(procs, buckets, root, timeout)
        except BaseException:
            _terminate(procs)
            if owns:
                shutil.rmtree(root, ignore_errors=True)
            raise
        for i, bucket in enumerate(buckets):
            result = _load_result(root, i, bucket)
            new_progress.update(result["progress"])
            n_records += sum(result["n_records"].values())
    ordered = {s.key: new_progress[s.key] for s in slices}
    return ParallelSegment(
        world=world,
        until_day=until_day,
        shard_root=root,
        progress=ordered,
        n_records=n_records,
        elapsed_s=time.perf_counter() - t0,
        owns_shards=owns,
        _active=active,
    )
