"""Versioned, fingerprinted checkpoint directories.

Layout of ``Ckpts/<name>/``::

    world.pkl    pickled world model (caches purged)
    state.json   {"version", "day", "slices": {key: progress, ...}}
    meta.json    format version, config digest, content hashes, deep
                 state digest, branch lineage

All three files go down through the PR 5 atomic-write discipline (temp
file, fsync, ``os.replace``, directory fsync); ``meta.json`` is written
last, so its presence marks a complete checkpoint.  Loading verifies the
format version, both content hashes, the config digest, and — unless
``verify=False`` — recomputes the canonical deep digest of the restored
world + progress and compares it against ``meta.json``; any mismatch
raises :class:`CheckpointError` (the checkpoint twin of
``repro.analytics.SnapshotError``).
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass
from pathlib import Path

from repro.parallel.resume import config_digest
from repro.stream.sink import atomic_write_bytes, atomic_write_text
from repro.world.config import SimulationConfig
from repro.world.inspect import state_digest
from repro.world.model import WorldModel

#: Format version of the checkpoint directory layout and payloads.
CHECKPOINT_VERSION = 1

META_NAME = "meta.json"
WORLD_NAME = "world.pkl"
STATE_NAME = "state.json"


class CheckpointError(ValueError):
    """A checkpoint directory is missing, version-incompatible, or fails
    its integrity checks (content hash, config digest, or deep state
    digest mismatch)."""


@dataclass
class Checkpoint:
    """A loaded checkpoint: restored world + temporal progress + meta."""

    path: Path
    meta: dict
    world: WorldModel
    progress: dict[str, dict]

    @property
    def name(self) -> str:
        return self.meta["name"]

    @property
    def day(self) -> int:
        return self.meta["day"]

    @property
    def lineage(self) -> dict:
        return self.meta["lineage"]

    @property
    def config(self) -> SimulationConfig:
        return self.world.config


def save_checkpoint(
    path: str | Path,
    world: WorldModel,
    day: int,
    progress: dict[str, dict],
    *,
    parent: str | None = None,
    interventions: list[str] | tuple[str, ...] = (),
) -> Path:
    """Write ``world`` + ``progress`` at day boundary ``day`` to ``path``.

    ``parent``/``interventions`` record branch lineage (the parent
    checkpoint's name and the intervention specs applied on top of it);
    a plain temporal checkpoint leaves both empty.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    world.purge_caches()
    world_blob = pickle.dumps(world, protocol=4)
    state_payload = {
        "version": CHECKPOINT_VERSION,
        "day": int(day),
        "slices": progress,
    }
    state_text = json.dumps(state_payload, sort_keys=True)
    meta = {
        "version": CHECKPOINT_VERSION,
        "name": path.name,
        "day": int(day),
        "seed": world.config.seed,
        "scale": world.config.scale,
        "config_digest": config_digest(world.config),
        "world_sha256": hashlib.sha256(world_blob).hexdigest(),
        "state_sha256": hashlib.sha256(state_text.encode("utf-8")).hexdigest(),
        "digest": state_digest(world, progress),
        "lineage": {"parent": parent, "interventions": list(interventions)},
    }
    atomic_write_bytes(path / WORLD_NAME, world_blob)
    atomic_write_text(path / STATE_NAME, state_text)
    atomic_write_text(path / META_NAME, json.dumps(meta, sort_keys=True, indent=2) + "\n")
    return path


def read_meta(path: str | Path) -> dict:
    """The ``meta.json`` of a checkpoint directory (version-checked)."""
    path = Path(path)
    meta_path = path / META_NAME
    if not meta_path.is_file():
        raise CheckpointError(f"{path} is not a checkpoint directory (no {META_NAME})")
    try:
        meta = json.loads(meta_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise CheckpointError(f"{meta_path} is not valid JSON: {exc}") from exc
    version = meta.get("version")
    if version != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint format version {version!r} is not "
            f"{CHECKPOINT_VERSION}"
        )
    return meta


def load_checkpoint(path: str | Path, *, verify: bool = True) -> Checkpoint:
    """Restore a checkpoint: unpickle the world, purge caches, rebind
    telemetry to this process, and verify integrity.

    ``verify=False`` skips only the (deep-walk) state digest; the cheap
    content hashes and the config digest are always checked.
    """
    path = Path(path)
    meta = read_meta(path)

    world_path = path / WORLD_NAME
    state_path = path / STATE_NAME
    for required in (world_path, state_path):
        if not required.is_file():
            raise CheckpointError(f"{path}: missing {required.name}")
    world_blob = world_path.read_bytes()
    if hashlib.sha256(world_blob).hexdigest() != meta["world_sha256"]:
        raise CheckpointError(f"{path}: {WORLD_NAME} does not match its recorded hash")
    state_text = state_path.read_text(encoding="utf-8")
    if hashlib.sha256(state_text.encode("utf-8")).hexdigest() != meta["state_sha256"]:
        raise CheckpointError(f"{path}: {STATE_NAME} does not match its recorded hash")
    state = json.loads(state_text)
    if state.get("version") != CHECKPOINT_VERSION or state.get("day") != meta["day"]:
        raise CheckpointError(f"{path}: {STATE_NAME} disagrees with {META_NAME}")

    try:
        world = pickle.loads(world_blob)
    except Exception as exc:
        raise CheckpointError(f"{path}: cannot unpickle {WORLD_NAME}: {exc}") from exc
    if not isinstance(world, WorldModel):
        raise CheckpointError(f"{path}: {WORLD_NAME} is not a WorldModel")
    world.rebind_runtime()
    if config_digest(world.config) != meta["config_digest"]:
        raise CheckpointError(f"{path}: restored config does not match its digest")
    progress = state["slices"]
    if verify and state_digest(world, progress) != meta["digest"]:
        raise CheckpointError(
            f"{path}: deep state digest mismatch — the checkpoint content "
            f"does not reproduce the fingerprint it was saved with"
        )
    return Checkpoint(path=path, meta=meta, world=world, progress=progress)
