"""Declared what-if interventions applied to a checkpoint at its cut day.

An intervention is a named, parameterizable mutation of the restored
world (and, where engine runtime state is involved, of the per-slice
progress payloads) applied at the checkpoint's cut time ``t``.  The
design rules:

* **The past is immutable.**  Interventions only truncate or disable
  from ``t`` forward: a misconfiguration window containing ``t`` ends at
  ``t``, windows entirely in the future are dropped, windows already
  closed are untouched.  Everything the baseline delivered before the
  cut stays byte-identical on the branch — which is what makes
  ``repro diff-runs`` deltas attributable to the intervention alone.

* **Mutations go through assignment.**  ``Zone.__setattr__`` bumps the
  zone's epoch on every assignment, so resolver state caches invalidate
  themselves; the DNSBL's identity-guarded cache is purged explicitly
  after its listing lists are replaced.

Specs are ``name`` or ``name:arg`` strings (e.g. ``fix-spf:acme-3.com``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.util.clock import Window
from repro.world.model import WorldModel


def _truncate(windows: list[Window], t: float) -> list[Window]:
    """Close the window containing ``t`` and drop future ones."""
    out = []
    for w in windows:
        if w.end <= t:
            out.append(w)
        elif w.start < t:
            out.append(Window(w.start, t))
    return out


def _changed(windows: list[Window], truncated: list[Window]) -> bool:
    return len(windows) != len(truncated) or any(
        a.end != b.end for a, b in zip(windows, truncated)
    )


# -- catalog -------------------------------------------------------------------------


def _fix_auth_fleetwide(world: WorldModel, progress: dict, t: float, arg: str | None) -> str:
    """End every open/future SPF, DKIM, DMARC, and generic-auth
    misconfiguration window across all zones ("Lazy Gatekeepers" fixed
    fleet-wide on day N)."""
    n = 0
    for zone in world.resolver.all_zones():
        touched = False
        for attr in (
            "auth_error_windows",
            "spf_error_windows",
            "dkim_error_windows",
            "dmarc_error_windows",
        ):
            windows = getattr(zone, attr)
            truncated = _truncate(windows, t)
            if _changed(windows, truncated):
                setattr(zone, attr, truncated)
                touched = True
        n += touched
    return f"ended auth misconfiguration windows on {n} zones"


def _fix_spf(world: WorldModel, progress: dict, t: float, arg: str | None) -> str:
    """End the SPF misconfiguration windows of one sender domain."""
    if not arg:
        raise ValueError("fix-spf needs a domain argument (fix-spf:<domain>)")
    zone = world.resolver.zone(arg)
    if zone is None:
        raise ValueError(f"fix-spf: unknown domain {arg!r}")
    truncated = _truncate(zone.spf_error_windows, t)
    if not _changed(zone.spf_error_windows, truncated):
        return f"{arg}: no open or future SPF windows at the cut"
    zone.spf_error_windows = truncated
    return f"{arg}: SPF record fixed at the cut"


def _fix_mx(world: WorldModel, progress: dict, t: float, arg: str | None) -> str:
    """End the MX misconfiguration windows of one receiver domain."""
    if not arg:
        raise ValueError("fix-mx needs a domain argument (fix-mx:<domain>)")
    zone = world.resolver.zone(arg)
    if zone is None:
        raise ValueError(f"fix-mx: unknown domain {arg!r}")
    truncated = _truncate(zone.mx_error_windows, t)
    if not _changed(zone.mx_error_windows, truncated):
        return f"{arg}: no open or future MX windows at the cut"
    zone.mx_error_windows = truncated
    return f"{arg}: MX records fixed at the cut"


def _fix_mx_fleetwide(world: WorldModel, progress: dict, t: float, arg: str | None) -> str:
    """End every open/future MX misconfiguration window."""
    n = 0
    for zone in world.resolver.all_zones():
        truncated = _truncate(zone.mx_error_windows, t)
        if _changed(zone.mx_error_windows, truncated):
            zone.mx_error_windows = truncated
            n += 1
    return f"ended MX misconfiguration windows on {n} zones"


def _delist_proxies(world: WorldModel, progress: dict, t: float, arg: str | None) -> str:
    """Delist every proxy IP from the DNSBL at the cut (open listings
    close, scheduled future listings never happen)."""
    service = world.dnsbl
    n = 0
    for ip, windows in list(service._listings.items()):
        truncated = _truncate(windows, t)
        if _changed(windows, truncated):
            # Replace the list object: the fast-path cache guards on list
            # identity, and a fresh object can never satisfy a stale entry.
            service._listings[ip] = truncated
            n += 1
    service.purge_caches()
    return f"delisted {n} proxy IPs at the cut"


def _retire_squats(world: WorldModel, progress: dict, t: float, arg: str | None) -> str:
    """End the registration of squatter-held typo domains at the cut:
    mail sent there afterwards fails resolution (T2) instead of reaching
    the squatter's catch-all MTA (T8)."""
    n = 0
    for zone in world.resolver.all_zones():
        if arg and zone.domain != arg.lower():
            continue
        registrant = zone.registrant_at(t)
        if registrant is None or not registrant.startswith("squatter-"):
            continue
        truncated = _truncate(zone.registrations, t)
        if _changed(zone.registrations, truncated):
            zone.registrations = truncated
            n += 1
    if arg and n == 0:
        raise ValueError(f"retire-squats: {arg!r} is not a squatter-held domain")
    return f"retired {n} squatted domains at the cut"


def _enable_dmarc_fleetwide(
    world: WorldModel, progress: dict, t: float, arg: str | None
) -> str:
    """Every receiver MTA enforces SPF/DKIM/DMARC from the cut on."""
    n = 0
    for mta in world.receiver_mtas.values():
        if not mta.policy.enforces_auth:
            mta.policy.enforces_auth = True
            n += 1
    return f"enabled auth enforcement on {n} receiver domains"


def _disable_greylisting(
    world: WorldModel, progress: dict, t: float, arg: str | None
) -> str:
    """Turn greylisting off everywhere — policies stop greylisting, and
    every engine's cached per-domain greylist store is cleared so
    restored engines don't keep consulting a store the policy disowned."""
    n = 0
    for mta in world.receiver_mtas.values():
        if mta.policy.greylisting:
            mta.policy.greylisting = False
            n += 1
    for entry in progress.values():
        engine = entry.get("engine")
        if engine is not None:
            engine["greylists"] = {domain: None for domain in engine["greylists"]}
    return f"disabled greylisting on {n} receiver domains"


@dataclass(frozen=True)
class Intervention:
    name: str
    summary: str
    apply: Callable[[WorldModel, dict, float, str | None], str]
    needs_arg: bool = False


INTERVENTIONS: dict[str, Intervention] = {
    i.name: i
    for i in (
        Intervention(
            "fix-auth-fleetwide",
            "end every open/future SPF/DKIM/DMARC misconfiguration window",
            _fix_auth_fleetwide,
        ),
        Intervention(
            "fix-spf",
            "fix one sender domain's SPF record (fix-spf:<domain>)",
            _fix_spf,
            needs_arg=True,
        ),
        Intervention(
            "fix-mx",
            "fix one receiver domain's MX records (fix-mx:<domain>)",
            _fix_mx,
            needs_arg=True,
        ),
        Intervention(
            "fix-mx-fleetwide",
            "end every open/future MX misconfiguration window",
            _fix_mx_fleetwide,
        ),
        Intervention(
            "delist-proxies",
            "close every proxy's DNSBL listing and cancel future ones",
            _delist_proxies,
        ),
        Intervention(
            "retire-squats",
            "end squatter-held typo-domain registrations (optional :<domain>)",
            _retire_squats,
        ),
        Intervention(
            "enable-dmarc-fleetwide",
            "every receiver MTA enforces sender authentication",
            _enable_dmarc_fleetwide,
        ),
        Intervention(
            "disable-greylisting",
            "no receiver greylists; cached engine greylist stores cleared",
            _disable_greylisting,
        ),
    )
}


def intervention_catalog() -> str:
    """Human-readable catalog (``repro branch --list-interventions``)."""
    width = max(len(name) for name in INTERVENTIONS)
    return "\n".join(
        f"{name.ljust(width)}  {item.summary}"
        for name, item in sorted(INTERVENTIONS.items())
    )


def apply_intervention(
    world: WorldModel, progress: dict, spec: str, t: float
) -> str:
    """Apply one ``name`` / ``name:arg`` spec at cut time ``t``; returns a
    one-line summary of what changed."""
    name, _, arg = spec.partition(":")
    item = INTERVENTIONS.get(name)
    if item is None:
        known = ", ".join(sorted(INTERVENTIONS))
        raise ValueError(f"unknown intervention {name!r} (known: {known})")
    if item.needs_arg and not arg:
        raise ValueError(f"intervention {name} needs an argument ({name}:<value>)")
    return item.apply(world, progress, t, arg or None)


def branch_checkpoint(
    source: str | Path,
    destination: str | Path,
    interventions: list[str],
    *,
    verify: bool = True,
) -> list[str]:
    """Load ``source``, apply ``interventions`` at its cut day, and save
    the branched state to ``destination`` with lineage recorded.

    Returns the per-intervention summary lines.  The branch carries the
    parent's name, deep digest, and the applied specs in its
    ``meta.json`` lineage, so a branch's provenance is auditable without
    the parent directory.
    """
    from repro.checkpoint.store import load_checkpoint, save_checkpoint

    if not interventions:
        raise ValueError("branch needs at least one intervention")
    ckpt = load_checkpoint(source, verify=verify)
    t = ckpt.world.clock.day_start(ckpt.day) if ckpt.day < ckpt.world.clock.n_days \
        else ckpt.world.clock.end_ts
    summaries = [
        apply_intervention(ckpt.world, ckpt.progress, spec, t)
        for spec in interventions
    ]
    parent = f"{ckpt.name}@{ckpt.meta['digest'][:12]}"
    lineage = ckpt.lineage
    if lineage.get("interventions"):
        # A branch of a branch: chain the specs so the full history rides
        # along even when intermediate directories are deleted.
        interventions = list(lineage["interventions"]) + list(interventions)
    save_checkpoint(
        destination,
        ckpt.world,
        ckpt.day,
        ckpt.progress,
        parent=parent,
        interventions=interventions,
    )
    return summaries
