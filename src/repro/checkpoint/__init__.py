"""World checkpointing, temporal resume, and branched what-if runs.

PR 5's resume skips *slices within one run*; this package checkpoints
*simulated time*.  A checkpoint is a versioned, fingerprinted directory
(``Ckpts/<name>/`` by convention) holding the complete simulation state
at a day boundary:

``world.pkl``
    The pickled world model — zones and misconfiguration windows,
    DNSBL listings, mailboxes, breach corpus, registrar state, clock —
    with every fast-path cache purged (caches are rebuildable pure
    lookups; purging keeps snapshots canonical and guarantees cached and
    ``--no-cache`` restores resume from the same bytes).

``state.json``
    Per-slice temporal progress: how many records each slice delivered,
    where traffic slices resume, and for partially-run slices the full
    engine runtime state — RNG cursors for the engine and fleet streams,
    the learned-STARTTLS set, and every greylist tuple store.

``meta.json``
    Format version, config digest, content hashes of the other two
    files, the canonical deep state digest
    (:func:`repro.world.inspect.state_digest`), and branch lineage.

The cut discipline is *day boundaries, strict prefix*: a segment up to
day ``D`` delivers exactly the specs with ``t < day_start(D)``, and
records are atomic per email (retries never span a cut).  Because the
slice plan is a pure function of the config and the canonical merge is
stable, a run chained across K segments — at any worker count — is
byte-identical to one uninterrupted run.

Branching (:func:`branch_checkpoint`) applies declared interventions
(fix SPF fleet-wide, delist the proxies, retire squatted domains, ...)
to a loaded checkpoint and saves it with lineage, turning the simulator
into a counterfactual lab; :mod:`repro.checkpoint.diff` renders
per-bounce-type/per-table deltas between two runs.
"""

from repro.checkpoint.diff import diff_payloads, diff_runs, render_diff, table_payload
from repro.checkpoint.interventions import (
    INTERVENTIONS,
    apply_intervention,
    branch_checkpoint,
    intervention_catalog,
)
from repro.checkpoint.parallel import ParallelSegment, run_segment_parallel
from repro.checkpoint.runner import SegmentRun, run_segment
from repro.checkpoint.state import fresh_progress
from repro.checkpoint.store import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "Checkpoint",
    "CheckpointError",
    "INTERVENTIONS",
    "ParallelSegment",
    "SegmentRun",
    "apply_intervention",
    "branch_checkpoint",
    "diff_payloads",
    "diff_runs",
    "fresh_progress",
    "intervention_catalog",
    "load_checkpoint",
    "render_diff",
    "run_segment",
    "run_segment_parallel",
    "save_checkpoint",
    "table_payload",
]
