"""World inspection: summary statistics and canonical deep digests.

Used by debugging sessions and the CLI to sanity-check what a
configuration produced, and by :mod:`repro.checkpoint` to fingerprint
the complete world+engine state: :func:`world_digest` walks every
reachable simulation object through a canonical serializer, so *any*
mutated field — a truncated misconfiguration window, one greylist tuple,
a single RNG cursor position — changes the digest.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from datetime import date, datetime
from enum import Enum

from repro.mta.policies import TLSRequirement
from repro.util.rng import RandomSource, WeightedSampler
from repro.world.model import WorldModel


@dataclass(frozen=True)
class WorldSummary:
    n_receiver_domains: int
    n_mailboxes: int
    n_sender_domains: int
    n_sender_users: int
    n_proxies: int
    n_countries: int
    n_dnsbl_adopters: int
    n_greylisting: int
    n_tls_mandatory: int
    n_auth_enforcing: int
    n_expiring_domains: int
    n_mx_broken_domains: int
    n_auth_broken_senders: int
    n_attackers: int
    breach_corpus_size: int

    def render(self) -> str:
        lines = [
            f"receiver domains: {self.n_receiver_domains} "
            f"({self.n_mailboxes} mailboxes, {self.n_countries} countries)",
            f"sender domains:   {self.n_sender_domains} "
            f"({self.n_sender_users} users, {self.n_attackers} attackers)",
            f"proxies:          {self.n_proxies}",
            f"policies:         dnsbl={self.n_dnsbl_adopters} "
            f"greylist={self.n_greylisting} tls-mandatory={self.n_tls_mandatory} "
            f"auth-enforcing={self.n_auth_enforcing}",
            f"pathologies:      expiring={self.n_expiring_domains} "
            f"mx-broken={self.n_mx_broken_domains} "
            f"auth-broken-senders={self.n_auth_broken_senders}",
            f"breach corpus:    {self.breach_corpus_size} addresses",
        ]
        return "\n".join(lines)


def summarize_world(world: WorldModel) -> WorldSummary:
    mtas = world.receiver_mtas
    zones = {z.domain: z for z in world.resolver.all_zones()}
    receiver_zones = [zones[n] for n in world.receiver_domains if n in zones]
    benign = world.benign_sender_domains()
    sender_zones = [zones[d.name] for d in benign if d.name in zones]
    return WorldSummary(
        n_receiver_domains=len(world.receiver_domains),
        n_mailboxes=sum(d.n_mailboxes for d in world.receiver_domains.values()),
        n_sender_domains=len(world.sender_domains),
        n_sender_users=sum(len(d.users) for d in world.sender_domains),
        n_proxies=len(world.fleet),
        n_countries=len({d.mta_country for d in world.receiver_domains.values()}),
        n_dnsbl_adopters=sum(1 for m in mtas.values() if m.policy.uses_dnsbl),
        n_greylisting=sum(1 for m in mtas.values() if m.policy.greylisting),
        n_tls_mandatory=sum(
            1 for m in mtas.values() if m.policy.tls is TLSRequirement.MANDATORY
        ),
        n_auth_enforcing=sum(1 for m in mtas.values() if m.policy.enforces_auth),
        n_expiring_domains=sum(
            1
            for z in receiver_zones
            if z.registrations and z.registrations[0].end < world.clock.end_ts
        ),
        n_mx_broken_domains=sum(1 for z in receiver_zones if z.mx_error_windows),
        n_auth_broken_senders=sum(
            1
            for z in sender_zones
            if z.auth_error_windows or z.spf_error_windows or z.dkim_error_windows
        ),
        n_attackers=sum(1 for d in world.sender_domains if d.is_attacker),
        breach_corpus_size=len(world.breach),
    )


def country_distribution(world: WorldModel) -> Counter:
    return Counter(d.mta_country for d in world.receiver_domains.values())


def dialect_distribution(world: WorldModel) -> Counter:
    return Counter(d.dialect for d in world.receiver_domains.values())


# -- canonical deep digest -----------------------------------------------------------
#
# The checkpoint fingerprint.  Every reachable simulation object is folded
# through a canonical serializer (sorted dict keys, sorted set elements,
# sorted attribute names, type-tagged primitives), so the digest is
# independent of dict iteration quirks and object identity but sensitive
# to every *value*.  Derived state that rebuilds deterministically —
# fast-path caches, telemetry bindings, lazily-built samplers — is
# excluded, which keeps the digest stable across a pickle round-trip and
# across cached vs ``--no-cache`` runs.

#: Attribute names excluded from the digest: rebuildable caches and
#: telemetry bindings (see the module docstring of ``repro.checkpoint``).
_SKIP_ATTRS = frozenset(
    {
        "_status_cache",
        "_sender_dns_cache",
        "_domain_sampler",
        "_sender_sampler",
        "_state_cache",
        "_ip_state",
        "_domain_snap",
        "_net_probs",
        "_fast",
        "_contact_cum",
        "_state_stats",
        "_stats",
        "_obs_on",
        "_tracer",
        # Cache-invalidation counters: two worlds differing only in how
        # often an attribute was (re)assigned are semantically identical.
        "_epoch",
        "_registration_epoch",
    }
)

#: Attribute-name prefixes excluded (bound telemetry instruments).
_SKIP_PREFIXES = ("_m_",)


def _skip_attr(name: str) -> bool:
    return name in _SKIP_ATTRS or name.startswith(_SKIP_PREFIXES)


def _instance_attrs(obj: object) -> list[tuple[str, object]]:
    if hasattr(obj, "__dict__"):
        items = vars(obj).items()
    else:
        names = []
        for klass in type(obj).__mro__:
            names.extend(getattr(klass, "__slots__", ()))
        items = [(n, getattr(obj, n)) for n in names if hasattr(obj, n)]
    return sorted((n, v) for n, v in items if not _skip_attr(n))


def _canon(obj: object, memo: dict[int, bytes], stack: set[int]) -> bytes:
    """Canonical bytes for ``obj``: literal encodings for primitives,
    hash-of-children digests for composites (bounds memory on big worlds)."""
    if obj is None:
        return b"none"
    kind = type(obj)
    if kind is bool:
        return b"bool:1" if obj else b"bool:0"
    if kind is int:
        return b"int:%d" % obj
    if kind is float:
        return f"float:{obj!r}".encode("ascii")
    if kind is str:
        return b"str:" + obj.encode("utf-8", "surrogatepass")
    if kind is bytes:
        return b"bytes:" + obj
    if isinstance(obj, Enum):
        return f"enum:{kind.__qualname__}.{obj.name}".encode("utf-8")
    if isinstance(obj, (datetime, date)):
        return f"time:{obj.isoformat()}".encode("ascii")
    if isinstance(obj, (list, tuple)):
        h = hashlib.sha256(b"seq")
        for item in obj:
            h.update(_canon(item, memo, stack))
        return h.digest()
    if isinstance(obj, dict):
        pairs = sorted(
            (_canon(k, memo, stack), _canon(v, memo, stack)) for k, v in obj.items()
        )
        h = hashlib.sha256(b"map")
        for kb, vb in pairs:
            h.update(kb)
            h.update(vb)
        return h.digest()
    if isinstance(obj, (set, frozenset)):
        h = hashlib.sha256(b"set")
        for eb in sorted(_canon(e, memo, stack) for e in obj):
            h.update(eb)
        return h.digest()
    if isinstance(obj, RandomSource):
        h = hashlib.sha256(b"rng")
        h.update(_canon(obj.getstate(), memo, stack))
        return h.digest()
    if isinstance(obj, WeightedSampler):
        h = hashlib.sha256(b"sampler")
        h.update(_canon(obj._items, memo, stack))
        h.update(_canon(obj._cumulative, memo, stack))
        h.update(_canon(obj._total, memo, stack))
        h.update(_canon(obj._rng, memo, stack))
        return h.digest()
    # Generic instance: type tag plus sorted (name, value) attributes.
    # Shared objects (the template bank, the DNSBL service) are digested
    # once and memoized by identity; objects currently on the walk stack
    # mark a reference cycle rather than recursing forever.
    key = id(obj)
    cached = memo.get(key)
    if cached is not None:
        return cached
    if key in stack:
        return b"cycle"
    attrs = _instance_attrs(obj)
    stack.add(key)
    try:
        h = hashlib.sha256(b"obj:" + kind.__qualname__.encode("utf-8"))
        for name, value in attrs:
            h.update(name.encode("utf-8"))
            h.update(_canon(value, memo, stack))
    finally:
        stack.discard(key)
    digest = h.digest()
    memo[key] = digest
    return digest


def world_digest(world: WorldModel) -> str:
    """Hex digest of the complete world state (zones, windows, listings,
    mailboxes, policies, samplers' tables, breach corpus, clock — every
    reachable value except rebuildable caches and telemetry)."""
    return hashlib.sha256(b"world:1" + _canon(world, {}, set())).hexdigest()


def state_digest(world: WorldModel, engine_states: object = None) -> str:
    """Checkpoint fingerprint: the world digest folded together with the
    per-slice progress payloads (engine RNG cursors, greylist tuples,
    learned STARTTLS sets).  Any mutated field on either side changes it."""
    memo: dict[int, bytes] = {}
    stack: set[int] = set()
    h = hashlib.sha256(b"state:1")
    h.update(_canon(world, memo, stack))
    h.update(_canon(engine_states, memo, stack))
    return h.hexdigest()
