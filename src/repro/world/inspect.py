"""World inspection: summary statistics over a built world.

Used by debugging sessions and the CLI to sanity-check what a
configuration produced before running traffic through it.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.mta.policies import TLSRequirement
from repro.world.model import WorldModel


@dataclass(frozen=True)
class WorldSummary:
    n_receiver_domains: int
    n_mailboxes: int
    n_sender_domains: int
    n_sender_users: int
    n_proxies: int
    n_countries: int
    n_dnsbl_adopters: int
    n_greylisting: int
    n_tls_mandatory: int
    n_auth_enforcing: int
    n_expiring_domains: int
    n_mx_broken_domains: int
    n_auth_broken_senders: int
    n_attackers: int
    breach_corpus_size: int

    def render(self) -> str:
        lines = [
            f"receiver domains: {self.n_receiver_domains} "
            f"({self.n_mailboxes} mailboxes, {self.n_countries} countries)",
            f"sender domains:   {self.n_sender_domains} "
            f"({self.n_sender_users} users, {self.n_attackers} attackers)",
            f"proxies:          {self.n_proxies}",
            f"policies:         dnsbl={self.n_dnsbl_adopters} "
            f"greylist={self.n_greylisting} tls-mandatory={self.n_tls_mandatory} "
            f"auth-enforcing={self.n_auth_enforcing}",
            f"pathologies:      expiring={self.n_expiring_domains} "
            f"mx-broken={self.n_mx_broken_domains} "
            f"auth-broken-senders={self.n_auth_broken_senders}",
            f"breach corpus:    {self.breach_corpus_size} addresses",
        ]
        return "\n".join(lines)


def summarize_world(world: WorldModel) -> WorldSummary:
    mtas = world.receiver_mtas
    zones = {z.domain: z for z in world.resolver.all_zones()}
    receiver_zones = [zones[n] for n in world.receiver_domains if n in zones]
    benign = world.benign_sender_domains()
    sender_zones = [zones[d.name] for d in benign if d.name in zones]
    return WorldSummary(
        n_receiver_domains=len(world.receiver_domains),
        n_mailboxes=sum(d.n_mailboxes for d in world.receiver_domains.values()),
        n_sender_domains=len(world.sender_domains),
        n_sender_users=sum(len(d.users) for d in world.sender_domains),
        n_proxies=len(world.fleet),
        n_countries=len({d.mta_country for d in world.receiver_domains.values()}),
        n_dnsbl_adopters=sum(1 for m in mtas.values() if m.policy.uses_dnsbl),
        n_greylisting=sum(1 for m in mtas.values() if m.policy.greylisting),
        n_tls_mandatory=sum(
            1 for m in mtas.values() if m.policy.tls is TLSRequirement.MANDATORY
        ),
        n_auth_enforcing=sum(1 for m in mtas.values() if m.policy.enforces_auth),
        n_expiring_domains=sum(
            1
            for z in receiver_zones
            if z.registrations and z.registrations[0].end < world.clock.end_ts
        ),
        n_mx_broken_domains=sum(1 for z in receiver_zones if z.mx_error_windows),
        n_auth_broken_senders=sum(
            1
            for z in sender_zones
            if z.auth_error_windows or z.spf_error_windows or z.dkim_error_windows
        ),
        n_attackers=sum(1 for d in world.sender_domains if d.is_attacker),
        breach_corpus_size=len(world.breach),
    )


def country_distribution(world: WorldModel) -> Counter:
    return Counter(d.mta_country for d in world.receiver_domains.values())


def dialect_distribution(world: WorldModel) -> Counter:
    return Counter(d.dialect for d in world.receiver_domains.values())
