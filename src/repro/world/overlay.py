"""Scenario overlay: declarative world mutations carried on the config.

A scenario is a tuple of frozen, picklable, JSON-able *ops* stored in
:attr:`repro.world.config.SimulationConfig.scenario`.  Keeping the ops on
the config — instead of mutating a built world imperatively — is what
preserves every execution-parity guarantee for free:

* parallel workers rebuild their world from the pickled config alone, so
  the ops replay identically in every process;
* ``config_digest`` hashes ``asdict(config)``, so two runs differ in
  fingerprint exactly when their scenarios differ (resume/checkpoint
  safety);
* :func:`apply_scenario` runs at the very end of
  :func:`repro.world.model.build_world` with its own named child stream,
  so the base world's draw history is untouched — a config with an empty
  scenario builds a byte-identical world to one without the field.

Ops address existing domains by *index* into deterministically sorted
name lists (:func:`benign_sender_names`, :func:`tail_receiver_names`)
rather than by generated name, so a scenario is portable across scales
and seeds.  :class:`CampaignOp` is carried here too but performs no
world mutation — :mod:`repro.workload.campaigns` compiles it into an
extra workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.dnssim.records import RecordType
from repro.util.clock import DAY_SECONDS, Window
from repro.util.rng import RandomSource

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (model -> overlay)
    from repro.dnssim.zone import Zone
    from repro.world.model import WorldModel


class ScenarioError(ValueError):
    """A scenario op or builder step that cannot be honoured."""


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ScenarioError(message)


# -- ops ------------------------------------------------------------------------


@dataclass(frozen=True)
class PublishZoneOp:
    """Register a brand-new DNS zone (include targets, provider records).

    ``spf=None`` publishes the zone with *no* SPF record — an ``include``
    of it evaluates to NONE, which RFC 7208 §5.2 turns into PERMERROR.
    """

    domain: str
    spf: str | None = None
    kind: str = field(default="publish_zone", init=False)

    def validate(self) -> None:
        _require(bool(self.domain) and "." in self.domain,
                 f"publish_zone: {self.domain!r} is not a domain name")
        _require(self.domain == self.domain.lower(),
                 f"publish_zone: domain must be lowercase, got {self.domain!r}")
        if self.spf is not None:
            _require(self.spf.startswith("v=spf1"),
                     f"publish_zone {self.domain}: SPF text must start with v=spf1")


@dataclass(frozen=True)
class SenderSpfOp:
    """Rewrite the SPF deployment of the ``sender_index``-th benign sender.

    ``spf=None`` deletes the record entirely; ``drop_dkim`` removes the
    DKIM key too, so authentication stands or falls with SPF alone (the
    "Lazy Gatekeepers" SPF-only deployment).  The domain's stochastic
    auth-misconfiguration windows are cleared so the scenario owns the
    whole story.
    """

    sender_index: int
    spf: str | None
    drop_dkim: bool = False
    kind: str = field(default="sender_spf", init=False)

    def validate(self) -> None:
        _require(self.sender_index >= 0, "sender_spf: sender_index must be >= 0")
        if self.spf is not None:
            _require(self.spf.startswith("v=spf1"),
                     "sender_spf: SPF text must start with v=spf1")


@dataclass(frozen=True)
class ReceiverAuthOp:
    """Set sender-authentication enforcement on a tail receiver."""

    receiver_index: int
    enforce: bool = True
    kind: str = field(default="receiver_auth", init=False)

    def validate(self) -> None:
        _require(self.receiver_index >= 0, "receiver_auth: receiver_index must be >= 0")


@dataclass(frozen=True)
class MxTopologyOp:
    """Replace a tail receiver's MX set with a preference-tiered fleet.

    ``hosts`` are ``(label, priority)`` pairs; the published hostname is
    ``{label}.{domain}``.  Lower priority = preferred, matching
    ``best_mx``.
    """

    receiver_index: int
    hosts: tuple[tuple[str, int], ...]
    kind: str = field(default="mx_topology", init=False)

    def validate(self) -> None:
        _require(self.receiver_index >= 0, "mx_topology: receiver_index must be >= 0")
        _require(len(self.hosts) >= 1, "mx_topology: need at least one MX host")
        labels = [label for label, _ in self.hosts]
        _require(len(set(labels)) == len(labels),
                 f"mx_topology: duplicate host labels in {labels}")
        for label, priority in self.hosts:
            _require(bool(label), "mx_topology: empty host label")
            _require(priority >= 0, f"mx_topology: negative priority for {label!r}")


@dataclass(frozen=True)
class MxOutageOp:
    """Take one MX host of a tail receiver down for ``[start_day, end_day)``.

    DNS keeps serving the record; the *SMTP host* is unreachable, so the
    sender fails over to the next preference tier — or times out (T14)
    when a correlated outage covers every host.
    """

    receiver_index: int
    host: str
    start_day: float
    end_day: float
    kind: str = field(default="mx_outage", init=False)

    def validate(self) -> None:
        _require(self.receiver_index >= 0, "mx_outage: receiver_index must be >= 0")
        _require(bool(self.host), "mx_outage: empty host label")
        _require(self.end_day > self.start_day >= 0,
                 f"mx_outage: bad window [{self.start_day}, {self.end_day})")


@dataclass(frozen=True)
class CampaignOp:
    """A deterministic scenario traffic campaign (no world mutation).

    Compiled by :func:`repro.workload.campaigns.campaign_workload` into
    an extra workload: ``per_day`` emails per day over ``[start_day,
    end_day)`` from users of the ``sender_index``-th benign sender domain
    to real mailboxes at the named majors and/or indexed tail receivers.
    """

    name: str
    sender_index: int
    receiver_domains: tuple[str, ...] = ()
    receiver_indices: tuple[int, ...] = ()
    per_day: int = 20
    start_day: int = 0
    end_day: int = 10**9  # clamped to the window at materialisation
    spamminess: float = 0.08
    kind: str = field(default="campaign", init=False)

    def validate(self) -> None:
        _require(bool(self.name), "campaign: empty name")
        _require(self.sender_index >= 0, "campaign: sender_index must be >= 0")
        _require(self.receiver_domains or self.receiver_indices,
                 f"campaign {self.name!r}: no receivers selected")
        _require(self.per_day >= 1, f"campaign {self.name!r}: per_day must be >= 1")
        _require(self.end_day > self.start_day >= 0,
                 f"campaign {self.name!r}: bad day range "
                 f"[{self.start_day}, {self.end_day})")
        _require(0.0 <= self.spamminess <= 1.0,
                 f"campaign {self.name!r}: spamminess must be in [0, 1]")
        for index in self.receiver_indices:
            _require(index >= 0, f"campaign {self.name!r}: negative receiver index")


#: Every op class, for isinstance gating and docs.
SCENARIO_OPS = (
    PublishZoneOp, SenderSpfOp, ReceiverAuthOp, MxTopologyOp, MxOutageOp, CampaignOp,
)


# -- selectors ------------------------------------------------------------------


def benign_sender_names(world: "WorldModel") -> list[str]:
    """Sorted benign sender domain names — the ``sender_index`` space."""
    return sorted(d.name for d in world.benign_sender_domains())


def tail_receiver_names(world: "WorldModel") -> list[str]:
    """Sorted non-major receiver domain names — the ``receiver_index`` space."""
    return sorted(
        name for name, d in world.receiver_domains.items() if not d.is_named_major
    )


def resolve_sender(world: "WorldModel", index: int) -> str:
    names = benign_sender_names(world)
    _require(bool(names), "scenario: world has no benign sender domains")
    return names[index % len(names)]


def resolve_receiver(world: "WorldModel", index: int) -> str:
    names = tail_receiver_names(world)
    _require(bool(names), "scenario: world has no tail receiver domains")
    return names[index % len(names)]


# -- application ----------------------------------------------------------------


def apply_scenario(world: "WorldModel", ops, rng: RandomSource) -> None:
    """Apply every world-mutating op, in order, to a freshly built world.

    Runs at the very end of ``build_world`` under ``rng.child("scenario")``
    semantics: the ops themselves draw nothing today (``rng`` is reserved
    for future stochastic ops), so the base world is byte-identical with
    or without an empty scenario.
    """
    for op in ops:
        op.validate()
        if isinstance(op, PublishZoneOp):
            _apply_publish_zone(world, op)
        elif isinstance(op, SenderSpfOp):
            _apply_sender_spf(world, op)
        elif isinstance(op, ReceiverAuthOp):
            _apply_receiver_auth(world, op)
        elif isinstance(op, MxTopologyOp):
            _apply_mx_topology(world, op)
        elif isinstance(op, MxOutageOp):
            _apply_mx_outage(world, op)
        elif isinstance(op, CampaignOp):
            pass  # traffic, not world state: repro.workload.campaigns
        else:  # pragma: no cover - config.validate rejects foreign entries
            raise ScenarioError(f"unknown scenario op {op!r}")


def _zone_of(world: "WorldModel", domain: str, what: str) -> "Zone":
    zone = world.resolver.zone(domain)
    _require(zone is not None, f"{what}: no zone for {domain!r}")
    return zone


def _apply_publish_zone(world: "WorldModel", op: PublishZoneOp) -> None:
    from repro.dnssim.zone import Zone

    _require(op.domain not in world.resolver,
             f"publish_zone: {op.domain!r} already exists")
    clock = world.clock
    zone = Zone(domain=op.domain)
    zone.registrations = [
        Window(clock.start_ts - 365 * DAY_SECONDS, clock.end_ts + 365 * DAY_SECONDS)
    ]
    zone.registrants = [f"scenario-{op.domain}"]
    if op.spf is not None:
        zone.add_record(RecordType.TXT_SPF, op.spf)
    world.resolver.register_zone(zone)


def _apply_sender_spf(world: "WorldModel", op: SenderSpfOp) -> None:
    domain = resolve_sender(world, op.sender_index)
    zone = _zone_of(world, domain, "sender_spf")
    drop = {RecordType.TXT_SPF}
    if op.drop_dkim:
        drop.add(RecordType.TXT_DKIM)
    zone.records = [r for r in zone.records if r.rtype not in drop]
    if op.spf is not None:
        zone.add_record(RecordType.TXT_SPF, op.spf)
    # The scenario owns this domain's deliverability story: stochastic
    # auth-misconfiguration and sender-DNS-outage windows would blur the
    # misdeployment signal with unrelated T1/T3 noise.
    zone.auth_error_windows = []
    zone.spf_error_windows = []
    zone.dns_error_windows = []
    if op.drop_dkim:
        zone.dkim_error_windows = []


def _apply_receiver_auth(world: "WorldModel", op: ReceiverAuthOp) -> None:
    domain = resolve_receiver(world, op.receiver_index)
    mta = world.receiver_mtas.get(domain)
    _require(mta is not None, f"receiver_auth: no MTA for {domain!r}")
    mta.policy.enforces_auth = op.enforce


def _apply_mx_topology(world: "WorldModel", op: MxTopologyOp) -> None:
    domain = resolve_receiver(world, op.receiver_index)
    zone = _zone_of(world, domain, "mx_topology")
    zone.records = [r for r in zone.records if r.rtype is not RecordType.MX]
    for label, priority in op.hosts:
        zone.add_record(RecordType.MX, f"{label}.{domain}", priority=priority)


def _apply_mx_outage(world: "WorldModel", op: MxOutageOp) -> None:
    domain = resolve_receiver(world, op.receiver_index)
    zone = _zone_of(world, domain, "mx_outage")
    host = f"{op.host}.{domain}"
    _require(
        any(r.rtype is RecordType.MX and r.value == host for r in zone.records),
        f"mx_outage: {host!r} is not an MX host of {domain!r} "
        "(declare the topology first)",
    )
    clock = world.clock
    window = Window(
        clock.start_ts + op.start_day * DAY_SECONDS,
        clock.start_ts + op.end_day * DAY_SECONDS,
    )
    zone.mx_host_down_windows.setdefault(host, []).append(window)
    # In-place dict/list mutation is invisible to the zone's epoch.
    zone.invalidate()
