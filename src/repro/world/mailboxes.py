"""Mailboxes: the recipient side of an address.

A mailbox may experience full-quota episodes and inactivity episodes
(windows); it may also be *registrable* after the account is deleted —
the raw material of username squatting — and may have third-party website
accounts attached (the paper finds 14 vulnerable usernames registered at
GitHub/Adobe/Spotify/eBay etc.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.util.clock import Window

#: Popular websites checked by the holehe-style account probe (Section 5.2).
POPULAR_WEBSITES = (
    "github.com",
    "adobe.com",
    "spotify.com",
    "ebay.com",
    "dropbox.com",
    "x.com",
)


@dataclass
class Mailbox:
    username: str
    domain: str
    #: Quota-full windows (emails bounce T9 while inside one).
    full_windows: list[Window] = field(default_factory=list)
    #: Inactivity windows (emails bounce T8-inactive while inside one).
    inactive_windows: list[Window] = field(default_factory=list)
    #: The account was deleted at this time and the username is open for
    #: re-registration afterwards (None = never).
    deleted_at: float | None = None
    #: Third-party sites where this address is registered.
    website_accounts: tuple[str, ...] = ()
    #: Receives so much mail that per-recipient rate limits trip (T11).
    high_volume: bool = False

    @property
    def address(self) -> str:
        return f"{self.username}@{self.domain}"

    def full_at(self, t: float) -> bool:
        return any(w.contains(t) for w in self.full_windows)

    def inactive_at(self, t: float) -> bool:
        return any(w.contains(t) for w in self.inactive_windows)

    def exists_at(self, t: float) -> bool:
        return self.deleted_at is None or t < self.deleted_at

    def registrable_at(self, t: float) -> bool:
        """True when a squatter could (re-)register this username."""
        return self.deleted_at is not None and t >= self.deleted_at

    def ever_full(self) -> bool:
        return bool(self.full_windows)

    def consistently_full(self, window: Window) -> bool:
        return any(
            w.start <= window.start and w.end >= window.end for w in self.full_windows
        )
