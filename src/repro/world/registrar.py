"""Registrar and WHOIS substrate.

Plays the roles of the GoDaddy availability API and the WHOIS-history API
in the paper's squatting analysis.  All answers derive from zone
registration windows, so availability, re-registration, and
registrant-change queries are consistent with what the resolver serves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dnssim.resolver import Resolver
from repro.dnssim.records import RecordType


@dataclass(frozen=True)
class WhoisSnapshot:
    domain: str
    registered: bool
    registrant: str | None


class Registrar:
    """Availability + WHOIS-history queries over the simulated DNS world."""

    def __init__(self, resolver: Resolver) -> None:
        self._resolver = resolver

    def available_for_registration(self, domain: str, t: float) -> bool:
        """True when ``domain`` can be purchased at time ``t``.

        A domain is available when it has no active registration — either
        it never existed (typo domains) or its registration lapsed.
        """
        zone = self._resolver.zone(domain)
        if zone is None:
            return True
        return not zone.registered_at(t)

    def whois(self, domain: str, t: float) -> WhoisSnapshot:
        zone = self._resolver.zone(domain)
        if zone is None:
            return WhoisSnapshot(domain, registered=False, registrant=None)
        registrant = zone.registrant_at(t)
        return WhoisSnapshot(domain, registered=registrant is not None, registrant=registrant)

    def registrant_changed(self, domain: str, t0: float, t1: float) -> bool:
        """Whether WHOIS shows a different registrant at ``t1`` vs ``t0``.

        Mirrors the paper's 2023-12 vs 2024-02 comparison: both snapshots
        must be registered and name different registrants.
        """
        before = self.whois(domain, t0)
        after = self.whois(domain, t1)
        if not (before.registered and after.registered):
            return False
        return before.registrant != after.registrant

    def register(self, domain: str, t: float, registrant: str) -> None:
        """Register an available domain (the paper's protective
        registrations of 30 high-traffic typo domains).

        Creates or extends the zone with a new registration window; no
        MX is configured (the paper deliberately deployed no services).
        """
        from repro.dnssim.zone import Zone
        from repro.util.clock import Window

        if not self.available_for_registration(domain, t):
            raise ValueError(f"{domain} is not available at t={t}")
        zone = self._resolver.zone(domain)
        if zone is None:
            zone = Zone(domain=domain)
            self._resolver.register_zone(zone)
        else:
            # A fresh registration does not resurrect the old owner's DNS:
            # the protective registrant publishes no mail records from the
            # takeover onward (history before ``t`` is untouched).
            zone.mx_disabled_from = t
        zone.registrations.append(Window(t, t + 365 * 86_400.0))
        zone.registrants.append(registrant)

    def serves_mail(self, domain: str, t: float) -> bool:
        """Re-registered and configured with MX + open port 25 (the
        paper's 105-of-751 check)."""
        zone = self._resolver.zone(domain)
        if zone is None or not zone.registered_at(t):
            return False
        return bool(zone.records_of(RecordType.MX)) and not zone.mx_broken_at(t)
