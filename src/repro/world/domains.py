"""Receiver-domain population.

The top of the distribution is the paper's Table 3 (named majors with
fixed dialects and hosting ASes); the long tail is Zipf-weighted synthetic
domains assigned a home country, a hosting arrangement (cloud vs
self-hosted — which decides the MTA's geolocated country and AS), a
template dialect, and a protection policy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geo.asn import AutonomousSystem
from repro.smtp.templates import TemplateDialect
from repro.world.mailboxes import Mailbox


@dataclass
class ReceiverDomain:
    name: str
    #: Country where the serving MTAs sit (what ip-api would report).
    mta_country: str
    #: Country of the organisation itself (equals mta_country when
    #: self-hosted; differs for cloud-hosted domains).
    home_country: str
    asn: AutonomousSystem
    dialect: TemplateDialect
    mx_host: str
    ips: list[str]
    #: Relative share of incoming traffic (drives InEmailRank).
    popularity: float
    mailboxes: dict[str, Mailbox] = field(default_factory=dict)
    is_named_major: bool = False
    #: A few domains run dead servers (every session times out) — the
    #: Venezuela/Belize rows of Table 5.
    dead_server: bool = False
    #: Explicit greylisting marker mirrored in the policy (kept here for
    #: cheap filtering in analyses).
    greylisting: bool = False

    def mailbox(self, username: str) -> Mailbox | None:
        return self.mailboxes.get(username.lower())

    def add_mailbox(self, box: Mailbox) -> None:
        self.mailboxes[box.username.lower()] = box

    @property
    def n_mailboxes(self) -> int:
        return len(self.mailboxes)


@dataclass(frozen=True)
class NamedMajor:
    """One Table 3 row: a major receiver domain with fixed properties."""

    name: str
    #: Email-volume share, shaped like Table 3 (gmail 23.7M, ...).
    volume_weight: float
    dialect: TemplateDialect
    as_number: int
    country: str
    uses_dnsbl: bool
    mailbox_count_hint: int


#: Table 3's top-10, plus per-domain protections the paper reports:
#: Hotmail/Outlook reject via Spamhaus (high soft ratios), Gmail relies on
#: internal reputation, corporate majors front with Proofpoint/Ironport.
NAMED_MAJORS: list[NamedMajor] = [
    NamedMajor("gmail.com", 23.73, TemplateDialect.GMAIL, 15169, "US", False, 6000),
    NamedMajor("hotmail.com", 4.85, TemplateDialect.EXCHANGE, 8075, "US", True, 3500),
    NamedMajor("yahoo.com", 3.11, TemplateDialect.YAHOO, 60001, "US", True, 3000),
    NamedMajor("apple.com", 2.94, TemplateDialect.GENERIC, 714, "US", False, 2500),
    NamedMajor("bbva.com", 2.91, TemplateDialect.PROOFPOINT, 52129, "ES", False, 2200),
    NamedMajor("cma-cgm.com", 1.94, TemplateDialect.IRONPORT, 16417, "FR", False, 2000),
    NamedMajor("outlook.com", 1.74, TemplateDialect.EXCHANGE, 8075, "US", True, 2000),
    NamedMajor("dbschenker.com", 1.49, TemplateDialect.PROOFPOINT, 22843, "DE", False, 1800),
    NamedMajor("dhl.com", 1.37, TemplateDialect.IRONPORT, 30238, "DE", False, 1800),
    NamedMajor("amazon.com", 1.30, TemplateDialect.GENERIC, 16509, "US", False, 1800),
]

#: Dialects available to long-tail self-hosted domains, with prevalence.
TAIL_DIALECTS: list[tuple[TemplateDialect, float]] = [
    (TemplateDialect.POSTFIX, 0.34),
    (TemplateDialect.EXIM, 0.14),
    (TemplateDialect.EXCHANGE, 0.22),
    (TemplateDialect.CORPORATE, 0.16),
    (TemplateDialect.QMAIL, 0.05),
    (TemplateDialect.GENERIC, 0.09),
]
