"""Sender population: Coremail's customers and the attackers among them.

Benign sender domains are Chinese universities and enterprises (the
paper's customer base).  Each sender *user* keeps a contact list over the
receiver world; contacts are reused heavily, which is what makes username
typos detectable (the same sender reaches both the typo and the corrected
address) and squatting persistent (stale lists keep mailing expired
domains).

Attacker senders come in the paper's two flavours: username-guessing
campaigns against chosen victim organisations, and bulk spammers mailing
leaked-address corpora.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SenderKind(str, Enum):
    BENIGN = "benign"
    GUESSER = "guesser"
    BULK_SPAMMER = "bulk_spammer"


@dataclass
class Contact:
    """One recipient in a sender user's address book."""

    address: str
    #: Relative frequency of mailing this contact.
    weight: float
    #: True when the stored address is already wrong (stale list entries,
    #: automation with a baked-in typo).
    stale: bool = False


@dataclass
class SenderUser:
    address: str
    contacts: list[Contact] = field(default_factory=list)
    #: Automation accounts (forwarding services, cron jobs) repeat the
    #: exact same recipient set at high volume — the paper's "five
    #: username typos received over 20K emails".
    is_automation: bool = False

    @property
    def domain(self) -> str:
        return self.address.rsplit("@", 1)[-1]


@dataclass
class SenderDomain:
    name: str
    kind: SenderKind = SenderKind.BENIGN
    users: list[SenderUser] = field(default_factory=list)
    #: For guessers: the victim domain and the username candidates tried.
    guess_target_domain: str | None = None
    guess_candidates: list[str] = field(default_factory=list)
    #: For bulk spammers: how many emails the campaign sends.
    campaign_volume: int = 0

    @property
    def is_attacker(self) -> bool:
        return self.kind is not SenderKind.BENIGN
