"""Breach-corpus oracle (HaveIBeenPwned stand-in).

The paper flags a sender domain as a leaked-dataset spammer when >80% of
its recipients appear in HaveIBeenPwned.  Here the corpus is seeded from
the synthetic world: a subset of real mailboxes plus a large slice of
*formerly*-real addresses (deleted accounts, stale dumps) — which is why
bulk-spam campaigns bounce so heavily (70.12% hard in the paper).
"""

from __future__ import annotations


class BreachCorpus:
    """Membership oracle over leaked email addresses."""

    def __init__(self) -> None:
        self._addresses: set[str] = set()

    def add(self, address: str) -> None:
        self._addresses.add(address.lower())

    def add_all(self, addresses: list[str]) -> None:
        for a in addresses:
            self.add(a)

    def __contains__(self, address: str) -> bool:
        return address.lower() in self._addresses

    def __len__(self) -> int:
        return len(self._addresses)

    def pwned_fraction(self, addresses: list[str]) -> float:
        """Fraction of ``addresses`` found in the corpus (the paper's 80%
        sender-flagging criterion)."""
        if not addresses:
            return 0.0
        hits = sum(1 for a in addresses if a.lower() in self._addresses)
        return hits / len(addresses)

    def sample_members(self, rng, k: int) -> list[str]:
        """Deterministic sample of corpus members (spam target lists)."""
        ordered = sorted(self._addresses)
        return rng.pick_k(ordered, k)
