"""Simulation configuration.

The default values are calibrated so the synthetic trace reproduces the
*shape* of the paper's findings (see DESIGN.md §3).  ``scale`` multiplies
population sizes and traffic volume together; benches run at modest scale
with fixed seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.util.clock import DEFAULT_END, DEFAULT_START


@dataclass
class SimulationConfig:
    seed: int = 20240604
    #: Global scale knob; 1.0 ≈ 1.5K receiver domains / ~250K emails.
    scale: float = 1.0
    start: datetime = DEFAULT_START
    end: datetime = DEFAULT_END

    # -- population sizes (at scale=1.0) --------------------------------------
    n_receiver_domains: int = 1500
    n_sender_domains: int = 340
    n_sender_users_per_domain: tuple[int, int] = (3, 60)
    n_mailboxes_small: tuple[int, int] = (8, 120)
    n_mailboxes_large: tuple[int, int] = (2000, 6000)
    n_proxies: int = 34

    # -- traffic volume ---------------------------------------------------------
    #: Mean benign emails per day at scale=1.0 (the generator multiplies
    #: by ``scale``), before weekday/seasonal modulation.
    emails_per_day: float = 560.0

    @property
    def emails_per_day_scaled(self) -> float:
        return self.emails_per_day * self.scale

    # -- receiver-policy prevalence ----------------------------------------------
    #: Fraction of long-tail receiver domains consulting the DNSBL.  Named
    #: majors are set explicitly (hotmail/outlook/yahoo yes, gmail no).
    dnsbl_adoption_tail: float = 0.15
    #: Fraction of tail DNSBL adopters that only adopt in February 2023
    #: (the paper's "63K domains added in February 2023").
    dnsbl_late_adopter_fraction: float = 0.45
    #: Fraction of tail domains enforcing sender authentication.
    auth_enforcement_tail: float = 0.08
    #: TLS-mandating fraction: popular domains are likelier to enforce TLS
    #: (paper: 38% of top-100 vs 8.53% of top-10K).
    tls_mandatory_top100: float = 0.38
    tls_mandatory_tail: float = 0.035
    #: Fraction of tail domains with broken-MX episodes (paper: 684 of 3M
    #: receiver domains — but those 684 produce 11.37% of bounces, so the
    #: affected domains skew to mid-popularity; we over-represent them).
    mx_misconfig_fraction: float = 0.028
    #: Fraction of receiver domains whose registration lapses mid-window
    #: (the squatting raw material).
    expiring_domain_fraction: float = 0.040
    #: Fraction of expired domains later re-registered; of those, the
    #: fraction whose registrant changes (paper: 751 re-registered, 26.67%
    #: new registrant).
    reregistration_fraction: float = 0.50
    registrant_change_fraction: float = 0.27

    # -- sender-side prevalence ------------------------------------------------------
    #: Fraction of sender domains with DKIM/SPF misconfiguration episodes
    #: (paper: 9K of 68K sender domains ≈ 13%).
    auth_misconfig_fraction: float = 0.13
    #: Fraction of sender domains with their own DNS outages (drives T1).
    sender_dns_misconfig_fraction: float = 0.05

    # -- mailbox behaviour ----------------------------------------------------------
    #: Fraction of (uncontacted) mailboxes with a full-quota episode; the
    #: contacted population gets a separate, higher assignment because
    #: full mailboxes are by definition actively-mailed ones.
    quota_issue_fraction: float = 0.0015
    #: Fraction of *contacted* mailboxes that develop quota issues.
    contacted_quota_fraction: float = 0.0050
    #: Fraction of contacted mailboxes that go inactive.
    contacted_inactive_fraction: float = 0.0006
    #: Fraction of contacted mailboxes whose account is deleted mid-window
    #: (feeds the breach corpus and the username-squatting analysis).
    contacted_deletion_fraction: float = 0.0060
    #: Fraction of mailboxes that go inactive at least once.
    inactive_fraction: float = 0.0035

    # -- user error rates ----------------------------------------------------------------
    #: Per-email probability the typed recipient has a username typo
    #: (paper: 2M/298M ≈ 0.7% of emails bounce this way; typing attempts
    #: are a bit more frequent because some typos hit real users).
    username_typo_rate: float = 0.0060
    #: Per-email probability of a domain-name typo (paper: 89K/298M).
    domain_typo_rate: float = 0.0009
    #: Fraction of sender users that keep mailing stale (expired-domain)
    #: contact lists.
    stale_contact_fraction: float = 0.05

    # -- attacker populations ----------------------------------------------------------
    n_guessing_campaigns: int = 4
    guessed_usernames_per_campaign: int = 250
    guess_success_rate: float = 0.009
    n_bulk_spam_domains: int = 10
    #: Bulk-spam campaigns jointly send this fraction of benign volume
    #: (paper: 31 domains sent 3M of 298M ≈ 1%).
    bulk_spam_volume_share: float = 0.0045

    # -- delivery strategy ----------------------------------------------------------------
    max_attempts: int = 5
    #: Attempts allowed for mail Coremail itself flagged as Spam
    #: ("Coremail sends emails that are determined to be spam once").
    spam_attempts: int = 1
    #: Attempts before giving up on non-retryable (recipient-level) errors.
    nonretryable_attempts: int = 2
    #: Proxy selection: "random" (Coremail) or "sticky" (ablation).
    proxy_policy: str = "random"
    #: Mean seconds between successive attempts (exponential), scaled by
    #: ``retry_backoff_multiplier ** attempt_index`` — real MTAs back off.
    retry_gap_mean_s: float = 1800.0
    retry_backoff_multiplier: float = 1.0

    # -- counterfactual toggles ------------------------------------------------------------
    #: Turn off all DNSBL usage (the §6.2 what-if: how much deliverability
    #: would improve if nobody consulted blocklists).
    disable_dnsbl: bool = False
    #: Turn off greylisting everywhere.
    disable_greylisting: bool = False
    #: Greylist tuple granularity for all greylisting receivers (32 =
    #: exact IP; 24 = postgrey's /24 matching, which is far friendlier to
    #: multi-proxy senders whose proxies share address space).
    greylist_network_prefix: int = 32
    #: §6.2 counterfactual: every MTA answers with the standardized NDR
    #: template set — no vendor dialects, no ambiguous wordings.
    standardized_ndr: bool = False

    # -- NDR style --------------------------------------------------------------------------
    #: Base ambiguity of tail corporate domains; Exchange-dialect domains
    #: get a higher value (Table 6 row 1 dominates).
    ambiguity_tail: float = 0.10
    ambiguity_exchange: float = 0.55

    # -- scenario overlay -------------------------------------------------------------------
    #: Declarative world mutations + campaigns applied after ``build_world``
    #: (see :mod:`repro.world.overlay`).  Carried on the config so parallel
    #: workers replay them identically and ``config_digest`` covers them.
    scenario: tuple = ()

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        """Reject configurations the simulator cannot honour."""
        if self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.end <= self.start:
            raise ValueError("end must be after start")
        if self.n_proxies < 1:
            raise ValueError("need at least one proxy")
        if self.max_attempts < 1 or self.spam_attempts < 1:
            raise ValueError("attempt budgets must be >= 1")
        if self.nonretryable_attempts < 1:
            raise ValueError("nonretryable_attempts must be >= 1")
        if self.spam_attempts > self.max_attempts:
            raise ValueError("spam_attempts cannot exceed max_attempts")
        if self.proxy_policy not in ("random", "sticky"):
            raise ValueError(f"unknown proxy policy {self.proxy_policy!r}")
        for name in (
            "dnsbl_adoption_tail", "auth_enforcement_tail", "tls_mandatory_top100",
            "tls_mandatory_tail", "mx_misconfig_fraction", "expiring_domain_fraction",
            "reregistration_fraction", "registrant_change_fraction",
            "auth_misconfig_fraction", "sender_dns_misconfig_fraction",
            "quota_issue_fraction", "contacted_quota_fraction",
            "contacted_inactive_fraction", "contacted_deletion_fraction",
            "inactive_fraction", "username_typo_rate", "domain_typo_rate",
            "stale_contact_fraction", "bulk_spam_volume_share",
            "dnsbl_late_adopter_fraction", "guess_success_rate",
            "ambiguity_tail", "ambiguity_exchange",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        if self.emails_per_day <= 0:
            raise ValueError("emails_per_day must be positive")
        if self.greylist_network_prefix not in (24, 32):
            raise ValueError("greylist_network_prefix must be 24 or 32")
        if self.retry_gap_mean_s <= 0:
            raise ValueError("retry_gap_mean_s must be positive")
        if self.retry_backoff_multiplier < 1.0:
            raise ValueError("retry_backoff_multiplier must be >= 1.0")
        for name in (
            "n_guessing_campaigns", "guessed_usernames_per_campaign",
            "n_bulk_spam_domains",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        # Scenario ops validate themselves (duck-typed to avoid importing
        # repro.world.overlay here, which imports util modules freely).
        for op in self.scenario:
            op_validate = getattr(op, "validate", None)
            if op_validate is None:
                raise ValueError(f"scenario entries must be overlay ops, got {op!r}")
            op_validate()

    def scaled(self, value: int | float) -> int:
        """Apply the global scale knob to a population size."""
        return max(1, int(round(value * self.scale)))

    def with_scale(self, scale: float) -> "SimulationConfig":
        from dataclasses import replace

        return replace(self, scale=scale)
