"""World construction.

``build_world(config)`` assembles every substrate into a single
:class:`WorldModel`:

* the proxy fleet and its DNSBL listing history,
* the receiver-domain population (named majors + long tail) with zones,
  mailboxes, policies, and per-domain :class:`ReceiverMTA` engines,
* the sender population (benign orgs with contact lists, username-guessing
  campaigns, bulk spammers) with their zones and misconfiguration windows,
* the breach corpus and the registrar/WHOIS substrate.

The builder is deliberately verbose: every prevalence knob comes from
:class:`~repro.world.config.SimulationConfig`, and DESIGN.md documents why
each default is set where it is.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Iterable

from repro.core import fastpath
from repro.delivery.proxies import ProxyFleet
from repro.dnsbl.service import DNSBLService, build_spamhaus_listings
from repro.dnssim.misconfig import AUTH_PROFILE, MX_HEAD_PROFILE, MX_PROFILE, QUOTA_PROFILE, MisconfigModel
from repro.dnssim.records import RecordType
from repro.dnssim.resolver import Resolver
from repro.dnssim.zone import Zone
from repro.geo.asn import AS_REGISTRY, AutonomousSystem, as_by_number, make_generic_as
from repro.geo.countries import COUNTRIES, Country
from repro.geo.ipaddr import GeoLookup, IPAllocator
from repro.mta.filters import COREMAIL_FILTER, SpamFilter
from repro.mta.policies import ReceiverPolicy, TLSRequirement
from repro.mta.receiver import ReceiverMTA, RecipientStatus
from repro.netsim.quality import NetworkModel
from repro.smtp.templates import NDRTemplateBank, TemplateDialect
from repro.typosquat.generate import sample_domain_typo, sample_username_typo
from repro.util.clock import DAY_SECONDS, SimClock, Window
from repro.util.rng import RandomSource, WeightedSampler
from repro.util.text import split_address
from repro.world.breach import BreachCorpus
from repro.world.config import SimulationConfig
from repro.world.domains import NAMED_MAJORS, TAIL_DIALECTS, ReceiverDomain
from repro.world.mailboxes import POPULAR_WEBSITES, Mailbox
from repro.world.names import make_domain_name, make_org_name, make_username
from repro.world.registrar import Registrar
from repro.world.senders import Contact, SenderDomain, SenderKind, SenderUser

#: DNSBL late adopters switch on in February 2023 (Fig 6's step change).
DNSBL_LATE_ADOPTION = datetime(2023, 2, 1, tzinfo=timezone.utc)

#: Countries whose forced domains exist to populate Table 5 / Fig 8.
_FORCED_COUNTRY_MIN_DOMAINS = 2

#: Attacker-targeted countries (Table 5's "Malicious Email Delivery" rows).
GUESS_TARGET_COUNTRIES = ("TJ", "KG", "NZ", "RO")
#: Stale-mailing-list countries (Table 5's "Improper User Operation" rows).
STALE_LIST_COUNTRIES = ("QA", "LV", "IR", "MM")


class _StatusEntry:
    """Cached recipient status for one address over ``[start, end)``.

    Mailbox predicates are piecewise-constant in time (full/inactive
    windows, a deletion point), so the status computed at ``t`` holds
    until the next window edge.  Guards capture the mailbox state the
    answer was derived from; any reassignment or growth of the window
    lists invalidates the entry.
    """

    __slots__ = (
        "status", "start", "end", "rdomain", "n_boxes", "box",
        "full_windows", "n_full", "inactive_windows", "n_inactive",
        "deleted_at", "high_volume",
    )

    def __init__(self, status, start, end, rdomain, n_boxes, box) -> None:
        self.status = status
        self.start = start
        self.end = end
        self.rdomain = rdomain
        self.n_boxes = n_boxes
        self.box = box
        if box is not None:
            self.full_windows = box.full_windows
            self.n_full = len(box.full_windows)
            self.inactive_windows = box.inactive_windows
            self.n_inactive = len(box.inactive_windows)
            self.deleted_at = box.deleted_at
            self.high_volume = box.high_volume

    def valid(self, world: "WorldModel", t: float) -> bool:
        if not self.start <= t < self.end:
            return False
        if self.rdomain is None:
            return len(world.receiver_domains) == self.n_boxes
        box = self.box
        if box is None:
            return len(self.rdomain.mailboxes) == self.n_boxes
        return (
            box.full_windows is self.full_windows
            and len(box.full_windows) == self.n_full
            and box.inactive_windows is self.inactive_windows
            and len(box.inactive_windows) == self.n_inactive
            and box.deleted_at == self.deleted_at
            and box.high_volume == self.high_volume
        )


@dataclass
class WorldModel:
    config: SimulationConfig
    clock: SimClock
    allocator: IPAllocator
    geo: GeoLookup
    resolver: Resolver
    bank: NDRTemplateBank
    fleet: ProxyFleet
    dnsbl: DNSBLService
    network: NetworkModel
    registrar: Registrar
    breach: BreachCorpus
    receiver_domains: dict[str, ReceiverDomain]
    receiver_mtas: dict[str, ReceiverMTA]
    sender_domains: list[SenderDomain]
    coremail_filter: SpamFilter = COREMAIL_FILTER
    #: Popularity sampler over receiver domains (built once).
    _domain_sampler: WeightedSampler[ReceiverDomain] | None = None
    #: Flat list of benign sender users with activity weights.
    _sender_sampler: WeightedSampler[SenderUser] | None = None
    #: Fast-path interval caches (address -> _StatusEntry, domain -> tuple).
    _status_cache: dict = field(default_factory=dict, repr=False, compare=False)
    _sender_dns_cache: dict = field(default_factory=dict, repr=False, compare=False)

    # -- checkpoint support ------------------------------------------------------

    def purge_caches(self) -> None:
        """Drop every fast-path cache reachable from the world.

        Called before pickling a checkpoint and after restoring one: the
        caches rebuild on demand (they are all identity/epoch/interval
        guarded pure lookups), so purging never changes behaviour — it
        keeps snapshots small and guarantees cached and ``--no-cache``
        restores resume from the same bytes.
        """
        self._status_cache.clear()
        self._sender_dns_cache.clear()
        self.resolver.purge_caches()
        self.dnsbl.purge_caches()

    def rebind_runtime(self) -> None:
        """Re-attach process-local runtime to a world restored from a
        checkpoint: purge caches and rebind telemetry instruments to this
        process's metrics registry."""
        self.purge_caches()
        self.resolver.rebind_telemetry()
        for mta in self.receiver_mtas.values():
            mta.rebind_telemetry()

    # -- samplers -------------------------------------------------------------

    def domain_sampler(self, rng: RandomSource) -> WeightedSampler[ReceiverDomain]:
        if self._domain_sampler is None:
            domains = list(self.receiver_domains.values())
            weights = [d.popularity for d in domains]
            self._domain_sampler = rng.sampler(domains, weights)
        return self._domain_sampler

    def sender_sampler(self, rng: RandomSource) -> WeightedSampler[SenderUser]:
        if self._sender_sampler is None:
            users: list[SenderUser] = []
            for sd in self.sender_domains:
                if sd.kind is SenderKind.BENIGN:
                    users.extend(sd.users)
            n_automation = sum(1 for u in users if u.is_automation)
            n_human = len(users) - n_automation
            # Automation accounts jointly produce a fixed ~0.6% slice of
            # traffic regardless of population size.
            auto_weight = 0.0
            if n_automation:
                auto_weight = 0.006 * max(n_human, 1) / n_automation
            weights = [auto_weight if u.is_automation else 1.0 for u in users]
            self._sender_sampler = rng.sampler(users, weights)
        return self._sender_sampler

    # -- lookups ----------------------------------------------------------------

    def recipient_status(self, address: str, t: float) -> RecipientStatus:
        """Receiver-side recipient validation (the engine feeds this into
        the MTA's AttemptContext).  Answers are cached per address with
        an exact validity interval when the fast path is on."""
        if not fastpath.enabled():
            return self._recipient_status_impl(address, t)
        entry = self._status_cache.get(address)
        if entry is not None and entry.valid(self, t):
            return entry.status
        entry = self._build_status_entry(address, t)
        self._status_cache[address] = entry
        return entry.status

    def _recipient_status_impl(self, address: str, t: float) -> RecipientStatus:
        user, domain = split_address(address)
        rdomain = self.receiver_domains.get(domain)
        if rdomain is None:
            return RecipientStatus.NO_SUCH_USER
        box = rdomain.mailbox(user)
        if box is None or not box.exists_at(t):
            return RecipientStatus.NO_SUCH_USER
        if box.inactive_at(t):
            return RecipientStatus.INACTIVE
        if box.full_at(t):
            return RecipientStatus.FULL
        if box.high_volume:
            return RecipientStatus.OVER_RATE
        return RecipientStatus.OK

    def _build_status_entry(self, address: str, t: float) -> _StatusEntry:
        neg_inf, pos_inf = float("-inf"), float("inf")
        user, domain = split_address(address)
        rdomain = self.receiver_domains.get(domain)
        if rdomain is None:
            return _StatusEntry(
                RecipientStatus.NO_SUCH_USER, neg_inf, pos_inf,
                None, len(self.receiver_domains), None,
            )
        box = rdomain.mailbox(user)
        if box is None:
            return _StatusEntry(
                RecipientStatus.NO_SUCH_USER, neg_inf, pos_inf,
                rdomain, len(rdomain.mailboxes), None,
            )
        status = self._recipient_status_impl(address, t)
        start, end = fastpath.stable_interval(
            t,
            (box.full_windows, box.inactive_windows),
            (box.deleted_at,),
        )
        return _StatusEntry(status, start, end, rdomain, len(rdomain.mailboxes), box)

    # -- bulk lookup (columnar prepass) --------------------------------------

    def recipient_status_span(
        self, address: str, t: float
    ) -> tuple[RecipientStatus, float, float]:
        """Recipient status plus its exact validity interval.

        The columnar delivery planner snapshots one entry per unique
        address per chunk and validates emails against the interval with
        a vectorized comparison; the entry itself comes from (and feeds)
        the same guarded cache :meth:`recipient_status` uses, so both
        paths always agree.
        """
        entry = self._status_cache.get(address)
        if entry is None or not entry.valid(self, t):
            entry = self._build_status_entry(address, t)
            self._status_cache[address] = entry
        return entry.status, entry.start, entry.end

    def recipient_status_bulk(
        self, addresses: Iterable[str], t: float
    ) -> list[RecipientStatus]:
        """:meth:`recipient_status` over many addresses at once."""
        span = self.recipient_status_span
        return [span(address, t)[0] for address in addresses]

    def sender_dns_broken_span(
        self, domain: str, t: float
    ) -> tuple[bool, float, float]:
        """:meth:`sender_dns_broken` plus its validity interval (shares
        the same token-guarded cache)."""
        entry = self._sender_dns_cache.get(domain)
        if entry is not None:
            zone, token, start, end, value = entry
            if start <= t < end and self.resolver.state_token(zone) == token:
                return value, start, end
        zone = self.resolver.zone(domain)
        token = self.resolver.state_token(zone)
        if zone is None:
            value, start, end = False, float("-inf"), float("inf")
        else:
            value = zone.dns_broken_at(t)
            start, end = fastpath.stable_interval(t, (zone.dns_error_windows,))
        self._sender_dns_cache[domain] = (zone, token, start, end, value)
        return value, start, end

    def sender_zone(self, domain: str) -> Zone | None:
        return self.resolver.zone(domain)

    def sender_auth_broken(self, domain: str, t: float) -> bool:
        zone = self.resolver.zone(domain)
        return zone is not None and zone.auth_broken_at(t)

    def sender_dns_broken(self, domain: str, t: float) -> bool:
        if not fastpath.enabled():
            zone = self.resolver.zone(domain)
            return zone is not None and zone.dns_broken_at(t)
        return self.sender_dns_broken_span(domain, t)[0]

    def benign_sender_domains(self) -> list[SenderDomain]:
        return [d for d in self.sender_domains if d.kind is SenderKind.BENIGN]

    def attacker_domains(self) -> list[SenderDomain]:
        return [d for d in self.sender_domains if d.is_attacker]

    def top_domains(self, n: int) -> list[ReceiverDomain]:
        ordered = sorted(
            self.receiver_domains.values(), key=lambda d: d.popularity, reverse=True
        )
        return ordered[:n]

    def all_mailboxes(self):
        for domain in self.receiver_domains.values():
            yield from domain.mailboxes.values()


# ---------------------------------------------------------------------------
# builder
# ---------------------------------------------------------------------------


def build_world(config: SimulationConfig) -> WorldModel:
    rng = RandomSource(config.seed, name="world")
    clock = SimClock(config.start, config.end)
    allocator = IPAllocator()
    resolver = Resolver()
    bank = NDRTemplateBank(standardized=config.standardized_ndr)

    fleet = ProxyFleet.build(allocator, rng.child("proxies"), config.n_proxies)
    _register_outgoing_spf_zone(resolver, fleet, clock)
    dnsbl = build_spamhaus_listings(rng.child("dnsbl"), clock, fleet.ips)
    network = NetworkModel()
    breach = BreachCorpus()

    receiver_domains: dict[str, ReceiverDomain] = {}
    receiver_mtas: dict[str, ReceiverMTA] = {}

    builder = _ReceiverBuilder(config, clock, rng, allocator, resolver, bank, dnsbl)
    for domain in builder.build_majors():
        receiver_domains[domain.name] = domain
    for domain in builder.build_tail():
        receiver_domains[domain.name] = domain
    receiver_mtas.update(builder.mtas)
    _register_squatted_typo_domains(config, rng.child("squats"), resolver, clock)

    sender_builder = _SenderBuilder(config, clock, rng, resolver, receiver_domains, breach)
    sender_domains = sender_builder.build()

    # Spamhaus also flags most bulk-spam sender domains on its domain
    # blocklist (the paper: 23 of 31 malicious sender domains flagged).
    dbl_rng = rng.child("dbl")
    for sender_domain in sender_domains:
        if sender_domain.kind is SenderKind.BULK_SPAMMER and dbl_rng.chance(0.74):
            start = clock.start_ts + dbl_rng.uniform(0.1, 0.5) * (
                clock.end_ts - clock.start_ts
            )
            dnsbl.flag_domain(
                sender_domain.name, Window(start, clock.end_ts + 365 * DAY_SECONDS)
            )

    world = WorldModel(
        config=config,
        clock=clock,
        allocator=allocator,
        geo=GeoLookup(allocator),
        resolver=resolver,
        bank=bank,
        fleet=fleet,
        dnsbl=dnsbl,
        network=network,
        registrar=Registrar(resolver),
        breach=breach,
        receiver_domains=receiver_domains,
        receiver_mtas=receiver_mtas,
        sender_domains=sender_domains,
    )
    sender_builder.attach_contacts(world)
    # Seeded after contacts so deleted-account addresses are included.
    _seed_breach_corpus(config, rng.child("breach"), receiver_domains, breach)
    if config.scenario:
        from repro.world.overlay import apply_scenario

        apply_scenario(world, config.scenario, rng.child("scenario"))
    return world


def _register_squatted_typo_domains(
    config: SimulationConfig,
    rng: RandomSource,
    resolver: Resolver,
    clock: SimClock,
) -> None:
    """A few typo domains of the majors are *already registered* by third
    parties (the paper's cases 2/3 of domain typos: the typo domain
    provides service).  They resolve and accept SMTP, so mistyped mail
    there bounces T8 (no such user) rather than T2 — and, correctly, the
    domain-typo squatting pipeline must NOT flag them as available."""
    n = max(2, config.scaled(3))
    made = 0
    for major in ("gmail.com", "hotmail.com", "yahoo.com", "outlook.com"):
        if made >= n:
            break
        typo = sample_domain_typo(major, rng.child(major))
        if typo is None or typo.text in resolver:
            continue
        zone = Zone(domain=typo.text)
        zone.add_record(RecordType.MX, f"mx1.{typo.text}", priority=10)
        zone.registrations = [
            Window(clock.start_ts - 365 * DAY_SECONDS, clock.end_ts + 365 * DAY_SECONDS)
        ]
        zone.registrants = [f"squatter-{typo.text}"]
        resolver.register_zone(zone)
        made += 1


def _register_outgoing_spf_zone(resolver: Resolver, fleet: ProxyFleet, clock: SimClock) -> None:
    """The shared outgoing infrastructure's SPF target: customer zones say
    ``include:coremail-out.net``, whose record whitelists every proxy."""
    zone = Zone(domain="coremail-out.net")
    mechanisms = " ".join(f"ip4:{ip}" for ip in fleet.ips)
    zone.add_record(RecordType.TXT_SPF, f"v=spf1 {mechanisms} -all")
    zone.registrations = [
        Window(clock.start_ts - 365 * DAY_SECONDS, clock.end_ts + 365 * DAY_SECONDS)
    ]
    zone.registrants = ["coremail"]
    resolver.register_zone(zone)


# ---------------------------------------------------------------------------
# receiver side
# ---------------------------------------------------------------------------


class _ReceiverBuilder:
    def __init__(
        self,
        config: SimulationConfig,
        clock: SimClock,
        rng: RandomSource,
        allocator: IPAllocator,
        resolver: Resolver,
        bank: NDRTemplateBank,
        dnsbl: DNSBLService,
    ) -> None:
        self.config = config
        self.clock = clock
        self.rng = rng.child("receivers")
        self.allocator = allocator
        self.resolver = resolver
        self.bank = bank
        self.dnsbl = dnsbl
        self.mtas: dict[str, ReceiverMTA] = {}
        self._mx_model = MisconfigModel(MX_PROFILE)
        self._quota_model = MisconfigModel(QUOTA_PROFILE)
        self._tail_dialect_sampler = self.rng.sampler(
            [d for d, _ in TAIL_DIALECTS], [w for _, w in TAIL_DIALECTS]
        )
        self._country_sampler = self.rng.sampler(
            COUNTRIES, [c.receiver_weight for c in COUNTRIES]
        )
        self._greylist_covered: set[str] = set()

    # -- majors ---------------------------------------------------------------

    def build_majors(self) -> list[ReceiverDomain]:
        domains = []
        for major in NAMED_MAJORS:
            stream = self.rng.child(f"major/{major.name}")
            try:
                asn = as_by_number(major.as_number)
            except KeyError:
                asn = make_generic_as(major.as_number - 60000, major.country)
            ips = [self.allocator.allocate(major.country, asn) for _ in range(4)]
            domain = ReceiverDomain(
                name=major.name,
                mta_country=major.country,
                home_country=major.country,
                asn=asn,
                dialect=major.dialect,
                mx_host=f"mx1.{major.name}",
                ips=ips,
                popularity=major.volume_weight,
                is_named_major=True,
            )
            self._populate_mailboxes(
                domain,
                stream,
                count=self.config.scaled(major.mailbox_count_hint * 0.25),
                quota_fraction=(0.012 if major.name == "gmail.com" else self.config.quota_issue_fraction),
                deletion_rate=(0.010 if major.name == "yahoo.com" else 0.0012),
            )
            policy = self._major_policy(major, stream)
            self._register_receiver_zone(domain, stream)
            self._make_mta(domain, policy, stream)
            domains.append(domain)
        return domains

    def _major_policy(self, major, stream: RandomSource) -> ReceiverPolicy:
        policy = ReceiverPolicy()
        policy.uses_dnsbl = major.uses_dnsbl and not self.config.disable_dnsbl
        # Webmail giants score listed sources rather than hard-failing
        # every connection (their Table 3 soft ratios are ~10-13%, not
        # the ~45% a hard-fail would produce).
        policy.dnsbl_reject_probability = 0.30
        policy.spam_threshold = {
            "gmail.com": 0.68,
            "hotmail.com": 0.66,
            "yahoo.com": 0.64,
            "outlook.com": 0.66,
            "apple.com": 0.72,
        }.get(major.name, 0.88)
        policy.enforces_auth = major.name in ("gmail.com", "yahoo.com")
        if major.dialect is TemplateDialect.EXCHANGE:
            policy.ambiguity = self.config.ambiguity_exchange
        # Webmail giants rate-limit hot recipients and bursty sources.
        if major.name in ("gmail.com", "yahoo.com", "hotmail.com", "outlook.com"):
            policy.rate_limit_probability = 0.038
            policy.recipient_rate_probability = 0.012
        return policy

    # -- tail --------------------------------------------------------------------

    def build_tail(self) -> list[ReceiverDomain]:
        config = self.config
        domains: list[ReceiverDomain] = []
        n_tail = max(0, config.scaled(config.n_receiver_domains) - len(NAMED_MAJORS))

        forced: list[Country] = []
        for country in COUNTRIES:
            copies = max(1, config.scaled(_FORCED_COUNTRY_MIN_DOMAINS))
            forced.extend([country] * copies)
        # Guarantee coverage of the named countries, but never let forced
        # placement crowd out weight-based sampling (at small scales the
        # long-tail filler countries simply go uncovered).
        forced = forced[: max(0, n_tail // 2)]

        used_names: set[str] = {m.name for m in NAMED_MAJORS}
        # Forced-coverage countries take the *bottom* popularity ranks:
        # the high-traffic tail head stays in weight-sampled (mostly
        # well-connected) countries, as in the real receiver distribution.
        forced_start = n_tail - len(forced)
        for i in range(n_tail):
            stream = self.rng.child(f"tail/{i}")
            if i >= forced_start:
                home = forced[i - forced_start]
            else:
                home = self._country_sampler.draw()
            name = self._unique_domain_name(stream, used_names)
            domain = self._build_tail_domain(
                name, home, i, n_tail, stream, forced_rank=(i >= forced_start)
            )
            domains.append(domain)

        self._mark_dead_servers(domains)
        self._normalize_popularity(domains)
        self._apply_receiver_misconfigs(domains)
        self._apply_dnsbl_adoption(domains)
        return domains

    def _apply_dnsbl_adoption(self, domains: list[ReceiverDomain]) -> None:
        """Quota-based DNSBL adoption over the tail, weighted by
        popularity so the adopting *volume share* is stable across seeds
        (the majors' adoption is fixed in _major_policy)."""
        config = self.config
        if config.disable_dnsbl:
            return
        eligible = [d for d in domains if not d.is_named_major]
        if not eligible:
            return
        rng = self.rng.child("dnsbl-adoption")
        n_adopt = max(1, round(config.dnsbl_adoption_tail * len(eligible)))
        # sqrt weighting: adoption leans popular but stays dispersed, so
        # no single small country's traffic is dominated by one adopter.
        sampler = rng.sampler(eligible, [d.popularity ** 0.5 for d in eligible])
        chosen: set[str] = set()
        guard = 0
        while len(chosen) < min(n_adopt, len(eligible)) and guard < 60 * n_adopt:
            guard += 1
            chosen.add(sampler.draw().name)
        for name in sorted(chosen):
            policy = self.mtas[name].policy
            policy.uses_dnsbl = True
            if rng.child(f"late/{name}").chance(config.dnsbl_late_adopter_fraction):
                policy.dnsbl_adoption_ts = DNSBL_LATE_ADOPTION.timestamp()

    def _normalize_popularity(self, domains: list[ReceiverDomain]) -> None:
        """Rescale tail popularity so the named majors keep the paper's
        ~15% share of incoming volume (Table 3: top-10 = 45.4M of 298M),
        and clamp individual tail domains below the smallest major so the
        InEmailRank top-10 is the majors, as in Table 3."""
        majors_weight = sum(m.volume_weight for m in NAMED_MAJORS)
        tail_weight = sum(d.popularity for d in domains)
        if tail_weight <= 0:
            return
        target_tail = majors_weight * (1.0 - 0.1523) / 0.1523
        factor = target_tail / tail_weight
        cap = 0.72 * min(m.volume_weight for m in NAMED_MAJORS)
        for domain in domains:
            domain.popularity = min(domain.popularity * factor, cap)

    def _apply_receiver_misconfigs(self, domains: list[ReceiverDomain]) -> None:
        """Quota-based post-pass: exactly ``round(fraction * n)`` tail
        domains get broken-MX episodes, and another slice gets an expiring
        registration (the squatting raw material)."""
        config = self.config
        rng = self.rng.child("receiver-misconfig")
        clock = self.clock
        eligible = [d for d in domains if not d.is_named_major and not d.dead_server]
        if not eligible:
            return

        # MX breakage skews to higher-traffic domains (the paper's 684
        # affected domains account for 11.37% of all bounces — they are not
        # tiny); sample the quota proportionally to popularity.
        n_mx = max(1, round(config.mx_misconfig_fraction * len(eligible)))
        by_pop = sorted(eligible, key=lambda d: d.popularity, reverse=True)
        head = by_pop[: max(4, len(by_pop) // 8)]
        mx_chosen: set[str] = set()
        # Guarantee that a slice of the broken domains is high-traffic
        # (the paper's 684 MX-broken domains account for 11.37% of all
        # bounces — they are not tiny).
        for domain in rng.pick_k(head, max(1, n_mx // 4)):
            mx_chosen.add(domain.name)
        mx_sampler = rng.sampler(eligible, [d.popularity for d in eligible])
        guard = 0
        while len(mx_chosen) < min(n_mx, len(eligible)) and guard < 50 * n_mx:
            guard += 1
            mx_chosen.add(mx_sampler.draw().name)
        # Any broken domain outside the bottom popularity quartile is a
        # staffed operation: frequent-but-short outages, never persistent.
        # Only abandoned micro-domains stay MX-broken indefinitely.
        staffed_names = {d.name for d in by_pop[: max(8, (3 * len(by_pop)) // 4)]}
        head_model = MisconfigModel(MX_HEAD_PROFILE)
        for name in sorted(mx_chosen):
            zone = self.resolver.zone(name)
            if zone is not None:
                model = head_model if name in staffed_names else self._mx_model
                zone.mx_error_windows = model.sample_windows(
                    rng.child(f"mx/{name}"), clock
                )

        # Expiring domains are dying businesses: draw from the bottom
        # quartile of popularity (the paper's 592 expired domains received
        # ~157 emails each over 15 months — small operations).
        by_popularity = sorted(eligible, key=lambda d: d.popularity)
        lower_quartile = by_popularity[: max(2, len(by_popularity) // 4)]
        n_expire = max(1, round(config.expiring_domain_fraction * len(eligible)))
        for domain in rng.pick_k(lower_quartile, min(n_expire, len(lower_quartile))):
            zone = self.resolver.zone(domain.name)
            if zone is None or zone.mx_error_windows:
                continue
            stream = rng.child(f"expire/{domain.name}")
            expiry = clock.start_ts + stream.uniform(0.55, 0.90) * (clock.end_ts - clock.start_ts)
            zone.registrations = [Window(clock.start_ts - 365 * DAY_SECONDS, expiry)]
            zone.registrants = [f"orig-{domain.name}"]
            if stream.chance(config.reregistration_fraction):
                # Re-registrations land between the paper's two probes
                # (availability check ~1 month after the window; WHOIS
                # re-check ~4 months later).
                restart = clock.end_ts + stream.uniform(35, 140) * DAY_SECONDS
                changed = stream.chance(config.registrant_change_fraction)
                registrant = f"new-{domain.name}" if changed else f"orig-{domain.name}"
                zone.registrations.append(
                    Window(restart, clock.end_ts + 365 * DAY_SECONDS)
                )
                zone.registrants.append(registrant)
                if not stream.chance(0.6):
                    # Most re-registrations are parked without mail.
                    zone.records = [
                        r for r in zone.records if r.rtype is not RecordType.MX
                    ]

    def _unique_domain_name(self, stream: RandomSource, used: set[str]) -> str:
        for _ in range(50):
            name = make_domain_name(stream)
            if name not in used:
                used.add(name)
                return name
        raise RuntimeError("domain-name space exhausted")

    def _build_tail_domain(
        self,
        name: str,
        home: Country,
        rank: int,
        n_tail: int,
        stream: RandomSource,
        forced_rank: bool = False,
    ) -> ReceiverDomain:
        config = self.config
        cloud_prob = 0.50 if home.fast_internet else 0.08
        cloud_as: AutonomousSystem | None = None
        if stream.chance(cloud_prob):
            cloud_as = stream.weighted_choice(AS_REGISTRY, [a.weight for a in AS_REGISTRY])
        if cloud_as is not None:
            mta_country = cloud_as.country
            asn = cloud_as
            if cloud_as.number == 15169:
                dialect = TemplateDialect.GMAIL
            elif cloud_as.number == 8075:
                dialect = TemplateDialect.EXCHANGE
            elif cloud_as.org.startswith("Proofpoint"):
                dialect = TemplateDialect.PROOFPOINT
            elif "Ironport" in cloud_as.org:
                dialect = TemplateDialect.IRONPORT
            else:
                dialect = TemplateDialect.GENERIC
        else:
            mta_country = home.code
            asn = make_generic_as(rank, home.code)
            dialect = self._tail_dialect_sampler.draw()

        ips = [self.allocator.allocate(mta_country, asn) for _ in range(stream.randint(1, 2))]
        # Zipf-flavoured popularity over tail ranks; a mild head so tail
        # domain #1 is much smaller than the named majors.  Forced-coverage
        # domains (the bottom ranks) get a fixed modest popularity so every
        # covered country clears the analysis volume thresholds.
        if forced_rank:
            popularity = 220.0 / (n_tail // 3 + 14) ** 1.03
        else:
            popularity = 220.0 / (rank + 14) ** 1.03
        domain = ReceiverDomain(
            name=name,
            mta_country=mta_country,
            home_country=home.code,
            asn=asn,
            dialect=dialect,
            mx_host=f"mx1.{name}",
            ips=ips,
            popularity=popularity,
        )

        large = stream.chance(0.03)
        lo, hi = config.n_mailboxes_large if large else config.n_mailboxes_small
        self._populate_mailboxes(
            domain,
            stream,
            count=max(2, config.scaled(stream.randint(lo, hi) * 0.5)),
            quota_fraction=config.quota_issue_fraction,
            deletion_rate=0.0012,
        )

        policy = self._tail_policy(domain, home, rank, stream)
        domain.greylisting = policy.greylisting
        self._register_receiver_zone(domain, stream)
        self._make_mta(domain, policy, stream)
        return domain

    def _tail_policy(
        self, domain: ReceiverDomain, home: Country, rank: int, stream: RandomSource
    ) -> ReceiverPolicy:
        config = self.config
        policy = ReceiverPolicy()
        # DNSBL adoption is assigned as a quota in a post-pass (see
        # _apply_dnsbl_adoption) so the adopting volume share is stable.
        greylisting = stream.chance(home.greylist_prevalence)
        if (
            home.greylist_prevalence >= 0.4
            and home.code not in self._greylist_covered
        ):
            # Guarantee at least one greylister in greylist-heavy
            # countries (the Table 5 soft rows).
            greylisting = True
        if greylisting:
            self._greylist_covered.add(home.code)
        policy.greylisting = greylisting and not config.disable_greylisting
        policy.greylist_network_prefix = config.greylist_network_prefix
        policy.enforces_auth = stream.chance(config.auth_enforcement_tail)
        top_cut = max(5, config.scaled(90))
        tls_prob = config.tls_mandatory_top100 if rank < top_cut else config.tls_mandatory_tail
        if stream.chance(tls_prob):
            policy.tls = TLSRequirement.MANDATORY
        policy.spam_threshold = min(max(stream.gauss(0.82, 0.07), 0.62), 0.96)
        if domain.dialect is TemplateDialect.EXCHANGE:
            policy.ambiguity = config.ambiguity_exchange
        elif domain.dialect is TemplateDialect.CORPORATE:
            policy.ambiguity = config.ambiguity_tail
        else:
            policy.ambiguity = 0.04
        return policy

    def _mark_dead_servers(self, domains: list[ReceiverDomain]) -> None:
        """A few self-hosted domains in Venezuela/Belize run dead MTAs —
        every session times out (Table 5's hard-T14 rows)."""
        quota = {"VE": 2, "BZ": 1}
        for domain in domains:
            want = quota.get(domain.mta_country, 0)
            if want > 0 and not domain.is_named_major:
                domain.dead_server = True
                quota[domain.mta_country] = want - 1

    # -- shared helpers ------------------------------------------------------------

    def _populate_mailboxes(
        self,
        domain: ReceiverDomain,
        stream: RandomSource,
        count: int,
        quota_fraction: float,
        deletion_rate: float,
    ) -> None:
        clock = self.clock
        used: set[str] = set()
        for i in range(count):
            username = make_username(stream)
            if username in used:
                username = f"{username}{stream.randint(100, 999)}"
                if username in used:
                    continue
            used.add(username)
            box = Mailbox(username=username, domain=domain.name)
            if stream.chance(quota_fraction):
                box.full_windows = self._quota_model.sample_windows(stream, clock)
            if stream.chance(self.config.inactive_fraction):
                start = clock.start_ts + stream.uniform(0, clock.end_ts - clock.start_ts)
                if stream.chance(0.6):
                    box.inactive_windows = [Window(start, clock.end_ts)]
                else:
                    box.inactive_windows = [
                        Window(start, min(start + stream.uniform(10, 120) * DAY_SECONDS, clock.end_ts))
                    ]
            if stream.chance(deletion_rate):
                box.deleted_at = clock.start_ts + stream.uniform(0.05, 0.8) * (
                    clock.end_ts - clock.start_ts
                )
                if stream.chance(0.05):
                    box.website_accounts = tuple(
                        stream.pick_k(POPULAR_WEBSITES, stream.randint(1, 4))
                    )
            if stream.chance(0.002):
                box.high_volume = True
            domain.add_mailbox(box)

    def _register_receiver_zone(self, domain: ReceiverDomain, stream: RandomSource) -> None:
        clock = self.clock
        zone = Zone(domain=domain.name)
        zone.add_record(RecordType.MX, domain.mx_host, priority=10)
        for ip in domain.ips:
            zone.add_record(RecordType.A, ip)
        zone.add_record(RecordType.NS, f"ns1.{domain.name}")
        zone.registrations = [
            Window(clock.start_ts - 365 * DAY_SECONDS, clock.end_ts + 365 * DAY_SECONDS)
        ]
        zone.registrants = [f"orig-{domain.name}"]
        self.resolver.register_zone(zone)

    def _make_mta(self, domain: ReceiverDomain, policy: ReceiverPolicy, stream: RandomSource) -> None:
        spam_filter = SpamFilter(
            name=f"filter.{domain.name}",
            threshold=policy.spam_threshold,
            noise_sigma=0.18,
        )
        self.mtas[domain.name] = ReceiverMTA(
            domain=domain.name,
            dialect=domain.dialect,
            policy=policy,
            spam_filter=spam_filter,
            bank=self.bank,
            dnsbl=self.dnsbl,
        )


# ---------------------------------------------------------------------------
# sender side
# ---------------------------------------------------------------------------


class _SenderBuilder:
    def __init__(
        self,
        config: SimulationConfig,
        clock: SimClock,
        rng: RandomSource,
        resolver: Resolver,
        receiver_domains: dict[str, ReceiverDomain],
        breach: BreachCorpus,
    ) -> None:
        self.config = config
        self.clock = clock
        self.rng = rng.child("senders")
        self.resolver = resolver
        self.receiver_domains = receiver_domains
        self.breach = breach
        self._auth_model = MisconfigModel(AUTH_PROFILE)

    def build(self) -> list[SenderDomain]:
        config = self.config
        domains: list[SenderDomain] = []
        used: set[str] = set()
        n_total = config.scaled(config.n_sender_domains)
        n_guess = min(max(2, config.scaled(config.n_guessing_campaigns)), n_total // 6 + 1)
        n_spam = min(max(2, config.scaled(config.n_bulk_spam_domains)), n_total // 6 + 1)
        n_benign = max(1, n_total - n_guess - n_spam)

        for i in range(n_benign):
            stream = self.rng.child(f"benign/{i}")
            name = self._unique_org_name(stream, used)
            domain = SenderDomain(name=name, kind=SenderKind.BENIGN)
            lo, hi = config.n_sender_users_per_domain
            n_users = max(1, config.scaled(stream.randint(lo, hi) * 0.4))
            for j in range(n_users):
                address = f"{make_username(stream)}@{name}"
                domain.users.append(SenderUser(address=address))
            domains.append(domain)
            self._register_sender_zone(domain, stream)

        # A couple of automation accounts with huge volume (typo'd targets
        # are attached with the contact lists).
        automation_candidates = [u for d in domains for u in d.users]
        for user in self.rng.pick_k(automation_candidates, 3):
            user.is_automation = True

        domains.extend(self._build_guessers(used, n_guess))
        domains.extend(self._build_bulk_spammers(used, n_spam))
        self._apply_sender_misconfigs(domains)
        return domains

    def _unique_org_name(self, stream: RandomSource, used: set[str]) -> str:
        for _ in range(50):
            name = make_org_name(stream)
            if name not in used and name not in self.receiver_domains:
                used.add(name)
                return name
        raise RuntimeError("org-name space exhausted")

    def _register_sender_zone(self, domain: SenderDomain, stream: RandomSource) -> None:
        clock = self.clock
        zone = Zone(domain=domain.name)
        zone.add_record(RecordType.TXT_SPF, "v=spf1 include:coremail-out.net ~all")
        zone.add_record(RecordType.TXT_DKIM, "v=DKIM1; k=rsa; p=MIGf...")
        zone.add_record(RecordType.TXT_DMARC, "v=DMARC1; p=quarantine")
        zone.registrations = [
            Window(clock.start_ts - 365 * DAY_SECONDS, clock.end_ts + 365 * DAY_SECONDS)
        ]
        zone.registrants = [f"orig-{domain.name}"]
        self.resolver.register_zone(zone)

    def _apply_sender_misconfigs(self, domains: list[SenderDomain]) -> None:
        """Quota-based selection (robust at small scale): exactly
        ``round(fraction * n)`` benign sender domains get broken DKIM/SPF
        windows, and a smaller set gets whole-zone DNS outages."""
        config = self.config
        benign = [d for d in domains if d.kind is SenderKind.BENIGN]
        if not benign:
            return
        rng = self.rng.child("sender-misconfig")
        n_auth = max(1, round(config.auth_misconfig_fraction * len(benign)))
        # Failure modes shaped like the paper's T3 NDR mix: 42.09% of
        # rejections cite both SPF and DKIM, 55.19% one mechanism, 2.72%
        # a DMARC policy rejection.
        modes = ["both", "spf", "dkim", "dmarc"]
        mode_weights = [0.42, 0.28, 0.27, 0.03]
        for domain in rng.pick_k(benign, n_auth):
            zone = self.resolver.zone(domain.name)
            if zone is None:
                continue
            stream = rng.child(f"auth/{domain.name}")
            windows = self._auth_model.sample_windows(stream, self.clock)
            mode = stream.weighted_choice(modes, mode_weights)
            if mode == "both":
                zone.auth_error_windows = windows
            elif mode == "spf":
                # SPF-only deployment whose SPF record breaks.
                zone.records = [
                    r for r in zone.records if r.rtype is not RecordType.TXT_DKIM
                ]
                zone.spf_error_windows = windows
            elif mode == "dkim":
                # DKIM-only deployment whose DKIM record breaks.
                zone.records = [
                    r for r in zone.records if r.rtype is not RecordType.TXT_SPF
                ]
                zone.dkim_error_windows = windows
            else:
                # DMARC mode: both records break AND the domain publishes
                # p=reject, so receivers cite the DMARC policy.
                zone.auth_error_windows = windows
                zone.records = [
                    r for r in zone.records if r.rtype is not RecordType.TXT_DMARC
                ]
                zone.add_record(RecordType.TXT_DMARC, "v=DMARC1; p=reject")
        n_dns = max(1, round(config.sender_dns_misconfig_fraction * len(benign)))
        for domain in rng.pick_k(benign, n_dns):
            zone = self.resolver.zone(domain.name)
            if zone is None:
                continue
            stream = rng.child(f"dns/{domain.name}")
            windows = []
            for _ in range(stream.randint(1, 3)):
                start = self.clock.start_ts + stream.uniform(0, 0.9) * (
                    self.clock.end_ts - self.clock.start_ts
                )
                windows.append(
                    Window(
                        start,
                        min(
                            start + stream.uniform(2.0, 30.0) * DAY_SECONDS,
                            self.clock.end_ts,
                        ),
                    )
                )
            zone.dns_error_windows = windows

    # -- attackers ---------------------------------------------------------------

    def _build_guessers(self, used: set[str], count: int) -> list[SenderDomain]:
        config = self.config
        out: list[SenderDomain] = []
        targets = self._pick_guess_targets(count)
        for i in range(count):
            stream = self.rng.child(f"guesser/{i}")
            name = self._unique_org_name(stream, used)
            domain = SenderDomain(name=name, kind=SenderKind.GUESSER)
            domain.users.append(SenderUser(address=f"notice@{name}"))
            target = targets[i % len(targets)] if targets else None
            if target is not None:
                domain.guess_target_domain = target.name
                domain.guess_candidates = self._make_guess_candidates(target, stream)
            self._register_sender_zone(domain, stream)
            out.append(domain)
        return out

    def _viable_guess_target(self, domain: ReceiverDomain) -> bool:
        """Attackers probe living domains: skip dead servers, broken MX,
        and expiring registrations (their mail never reaches the
        recipient check, which defeats the probe)."""
        if domain.is_named_major or domain.dead_server or domain.n_mailboxes < 8:
            return False
        zone = self.resolver.zone(domain.name)
        if zone is None or zone.mx_error_windows:
            return False
        if zone.registrations and zone.registrations[0].end < self.clock.end_ts:
            return False
        return True

    def _pick_guess_targets(self, count: int) -> list[ReceiverDomain]:
        preferred = [
            d
            for d in self.receiver_domains.values()
            if d.mta_country in GUESS_TARGET_COUNTRIES and self._viable_guess_target(d)
        ]
        others = [
            d
            for d in self.receiver_domains.values()
            if self._viable_guess_target(d)
        ]
        targets = preferred[:count]
        for domain in others:
            if len(targets) >= count:
                break
            if domain not in targets:
                targets.append(domain)
        return targets

    def _make_guess_candidates(self, target: ReceiverDomain, stream: RandomSource) -> list[str]:
        """Usernames a guesser tries: mutations of human-style names, a
        fraction of which happen to exist (the paper's 0.91% success)."""
        config = self.config
        n = max(60, config.scaled(config.guessed_usernames_per_campaign))
        n_hits = max(1, round(n * config.guess_success_rate))
        existing = list(target.mailboxes.keys())
        hits = stream.pick_k(existing, n_hits)
        candidates = list(hits)
        attempts = 0
        while len(candidates) < n and attempts < n * 20:
            attempts += 1
            base = stream.choice(existing) if existing and stream.chance(0.7) else make_username(stream)
            typo = sample_username_typo(base, stream)
            candidate = typo.text if typo is not None else make_username(stream)
            if candidate not in target.mailboxes and candidate not in candidates:
                candidates.append(candidate)
        stream.shuffle(candidates)
        return candidates

    def _build_bulk_spammers(self, used: set[str], count: int) -> list[SenderDomain]:
        config = self.config
        out: list[SenderDomain] = []
        for i in range(count):
            stream = self.rng.child(f"spammer/{i}")
            name = self._unique_org_name(stream, used)
            domain = SenderDomain(name=name, kind=SenderKind.BULK_SPAMMER)
            for j in range(stream.randint(1, 4)):
                domain.users.append(SenderUser(address=f"{make_username(stream)}@{name}"))
            total_benign = config.emails_per_day_scaled * 450
            per_domain = total_benign * config.bulk_spam_volume_share / max(count, 1)
            domain.campaign_volume = max(5, int(per_domain * stream.uniform(0.5, 1.6)))
            self._register_sender_zone(domain, stream)
            out.append(domain)
        return out

    # -- contacts (needs the full world) ----------------------------------------

    def attach_contacts(self, world: WorldModel) -> None:
        """Build benign users' contact lists over the receiver world, then
        correlate mailbox pathologies with actual usage (a mailbox can only
        fill up if people mail it)."""
        rng = self.rng.child("contacts")
        domain_sampler = world.domain_sampler(rng)
        expiring = [
            d
            for d in world.receiver_domains.values()
            if (zone := world.resolver.zone(d.name)) is not None
            and zone.registrations
            and zone.registrations[0].end < world.clock.end_ts
        ]
        stale_candidates: list[str] = []
        for domain in expiring:
            boxes = list(domain.mailboxes.values())
            for box in rng.pick_k(boxes, min(4, len(boxes))):
                stale_candidates.append(box.address)

        for sender_domain in world.benign_sender_domains():
            for user in sender_domain.users:
                stream = rng.child(user.address)
                if user.is_automation:
                    self._attach_automation_contact(user, world, stream)
                    continue
                n_contacts = stream.randint(2, 30)
                for k in range(n_contacts):
                    rdomain = domain_sampler.draw()
                    boxes = rdomain.mailboxes
                    if not boxes:
                        continue
                    username = stream.choice(list(boxes.keys()))
                    weight = 1.0 / (k + 1) ** 0.8
                    user.contacts.append(
                        Contact(address=f"{username}@{rdomain.name}", weight=weight)
                    )
                if stale_candidates and stream.chance(self.config.stale_contact_fraction):
                    address = stream.choice(stale_candidates)
                    user.contacts.append(Contact(address=address, weight=0.3, stale=True))
                if not user.contacts:
                    user.contacts.append(
                        Contact(address="postmaster@gmail.com", weight=0.5)
                    )
        # Every expiring domain keeps at least a couple of correspondents
        # who never learn it died — the residual-trust mail stream the
        # squatting analysis measures.
        all_users = [u for d in world.benign_sender_domains() for u in d.users]
        for domain in expiring:
            boxes = list(domain.mailboxes.values())
            if not boxes or not all_users:
                continue
            stream = rng.child(f"stale/{domain.name}")
            for user in stream.pick_k(all_users, stream.randint(1, 2)):
                box = stream.choice(boxes)
                user.contacts.append(
                    Contact(address=box.address, weight=0.08, stale=True)
                )
        self._assign_contacted_pathologies(world, rng.child("pathologies"))

    def _assign_contacted_pathologies(self, world: WorldModel, rng: RandomSource) -> None:
        """Quota-full and inactivity episodes hit *contacted* mailboxes
        (weighted by how much mail they attract; Gmail boxes over-weighted
        to reproduce Table 3's 'Gmail hard bounces are mostly quota')."""
        config = self.config
        clock = world.clock
        quota_model = MisconfigModel(QUOTA_PROFILE)
        weights: dict[str, float] = {}
        for sender_domain in world.benign_sender_domains():
            for user in sender_domain.users:
                for contact in user.contacts:
                    weights[contact.address] = weights.get(contact.address, 0.0) + contact.weight
        boxes = []
        box_weights = []
        for address, weight in sorted(weights.items()):
            try:
                username, domain_name = split_address(address)
            except ValueError:
                continue
            rdomain = world.receiver_domains.get(domain_name)
            if rdomain is None:
                continue
            zone = world.resolver.zone(domain_name)
            if zone is None or (
                zone.registrations and zone.registrations[0].end < clock.end_ts
            ):
                # Boxes at expiring domains bounce T2, never T9/T8-inactive.
                continue
            box = rdomain.mailbox(username)
            if box is None or box.deleted_at is not None:
                continue
            boxes.append(box)
            box_weights.append(weight * (6.0 if domain_name == "gmail.com" else 1.0))
        if not boxes:
            return
        # Square the weights: pathologies concentrate on the most-mailed
        # boxes, which is what makes their bounce episodes observable.
        sampler = rng.sampler(boxes, [w * w for w in box_weights])
        n_quota = max(1, round(config.contacted_quota_fraction * len(boxes)))
        chosen: set[str] = set()
        attempts = 0
        while len(chosen) < min(n_quota, len(boxes)) and attempts < 30 * n_quota:
            attempts += 1
            box = sampler.draw()
            if box.address in chosen:
                continue
            chosen.add(box.address)
            box.full_windows = quota_model.sample_windows(
                rng.child(f"quota/{box.address}"), clock
            )
        n_inactive = max(1, round(config.contacted_inactive_fraction * len(boxes)))
        inactive_chosen: set[str] = set()
        attempts = 0
        while len(inactive_chosen) < min(n_inactive, len(boxes)) and attempts < 30 * n_inactive:
            attempts += 1
            box = sampler.draw()
            if box.address in chosen or box.address in inactive_chosen:
                continue
            inactive_chosen.add(box.address)
            stream = rng.child(f"inactive/{box.address}")
            start = clock.start_ts + stream.uniform(0.1, 0.9) * (clock.end_ts - clock.start_ts)
            if stream.chance(0.6):
                box.inactive_windows = [Window(start, clock.end_ts)]
            else:
                box.inactive_windows = [
                    Window(
                        start,
                        min(start + stream.uniform(10, 120) * DAY_SECONDS, clock.end_ts),
                    )
                ]
        # Account deletions among contacted boxes: the raw material of
        # username squatting (Yahoo's lax re-registration policy makes its
        # deleted names disproportionately vulnerable).
        n_delete = max(2, round(config.contacted_deletion_fraction * len(boxes)))
        yahoo_boxes = [b for b in boxes if b.domain == "yahoo.com"]
        yahoo_weights = [w for b, w in zip(boxes, box_weights) if b.domain == "yahoo.com"]
        yahoo_sampler = rng.sampler(yahoo_boxes, yahoo_weights) if yahoo_boxes else None
        deleted: set[str] = set()
        attempts = 0
        while len(deleted) < min(n_delete, len(boxes)) and attempts < 60 * n_delete:
            attempts += 1
            # Yahoo recycles accounts aggressively (the paper: 21 of 25
            # once-working vulnerable usernames were Yahoo's).
            if yahoo_sampler is not None and rng.chance(0.55):
                box = yahoo_sampler.draw()
            else:
                box = sampler.draw()
            if box.address in deleted or box.full_windows or box.inactive_windows:
                continue
            deleted.add(box.address)
            stream = rng.child(f"delete/{box.address}")
            box.deleted_at = clock.start_ts + stream.uniform(0.1, 0.7) * (
                clock.end_ts - clock.start_ts
            )
            if stream.chance(0.25):
                box.website_accounts = tuple(
                    stream.pick_k(POPULAR_WEBSITES, stream.randint(1, 4))
                )

    def _attach_automation_contact(self, user: SenderUser, world: WorldModel, stream: RandomSource) -> None:
        """Automation accounts bake a username typo into their one target
        (the paper's 'five username typos received over 20K emails')."""
        for _ in range(30):
            rdomain = world.domain_sampler(stream).draw()
            if not rdomain.mailboxes:
                continue
            username = stream.choice(list(rdomain.mailboxes.keys()))
            typo = sample_username_typo(username, stream)
            if typo is None or typo.text in rdomain.mailboxes:
                continue
            user.contacts.append(
                Contact(address=f"{typo.text}@{rdomain.name}", weight=50.0, stale=True)
            )
            return
        user.contacts.append(Contact(address="reports@gmail.com", weight=10.0))


# ---------------------------------------------------------------------------
# breach corpus
# ---------------------------------------------------------------------------


def _seed_breach_corpus(
    config: SimulationConfig,
    rng: RandomSource,
    receiver_domains: dict[str, ReceiverDomain],
    breach: BreachCorpus,
) -> None:
    """Leaked corpus: all deleted accounts, a slice of live accounts, and
    a majority of dead (never-existed) addresses at real domains — which is
    what makes leaked-list spam bounce so hard (70% in the paper)."""
    live: list[str] = []
    for domain in receiver_domains.values():
        for box in domain.mailboxes.values():
            if box.deleted_at is not None:
                breach.add(box.address)
            else:
                live.append(box.address)
    for address in rng.subset(live, 0.06):
        breach.add(address)
    n_live = max(1, len(breach))
    domains = [d for d in receiver_domains.values() if d.mailboxes]
    n_dead = int(n_live * 1.6)
    for i in range(n_dead):
        domain = rng.choice(domains)
        breach.add(f"{make_username(rng)}{rng.randint(100, 99999)}@{domain.name}")
