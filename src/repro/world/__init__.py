"""The synthetic world: domains, mailboxes, senders, attackers, registrar.

:class:`~repro.world.model.WorldModel` ties together every substrate —
DNS zones, receiver-MTA policy engines, the DNSBL, proxy fleet, breach
corpus, and registrar lifecycle — and is the single input the delivery
engine and workload generator operate on.
"""

from repro.world.config import SimulationConfig
from repro.world.model import WorldModel, build_world

__all__ = ["SimulationConfig", "WorldModel", "build_world"]
