"""Deterministic name generation for domains and usernames.

Usernames follow real human conventions (first/last-name combinations,
initials, separators, trailing digits) because the typo and
username-guessing analyses depend on that structure.
"""

from __future__ import annotations

from repro.util.rng import RandomSource

FIRST_NAMES = [
    "james", "mary", "john", "patricia", "robert", "jennifer", "michael",
    "linda", "william", "elizabeth", "david", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "wei",
    "li", "ming", "hua", "juan", "carlos", "maria", "ana", "ahmed",
    "fatima", "yuki", "haruto", "olga", "ivan", "pierre", "claire",
    "hans", "greta", "raj", "priya", "chen", "yan", "olu", "amara",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "wang", "zhang", "liu", "chen",
    "yang", "huang", "kumar", "singh", "patel", "kim", "lee", "park",
    "mueller", "schmidt", "fischer", "dubois", "moreau", "rossi", "ricci",
    "tanaka", "suzuki", "sato", "ivanov", "petrov", "silva", "santos",
    "okafor", "mensah", "haddad", "ali",
]

_SYLLABLES = [
    "ba", "co", "da", "el", "fa", "go", "hi", "in", "jo", "ka", "lu",
    "me", "no", "or", "pa", "qu", "ra", "so", "ta", "ur", "va", "wo",
    "xi", "ya", "zo", "tech", "net", "mail", "soft", "data", "link",
    "cloud", "sys", "corp", "trade", "ship", "bank", "edu", "lab",
]

_TLDS = [".com", ".net", ".org", ".com.cn", ".de", ".co.uk", ".io", ".fr", ".edu", ".gov"]
_TLD_WEIGHTS = [46, 10, 8, 7, 6, 5, 4, 4, 6, 4]

_DIGITS = "0123456789"


def make_domain_name(rng: RandomSource) -> str:
    """A brandable second-level name plus a weighted TLD."""
    n_syllables = rng.randint(2, 4)
    label = "".join(rng.choice(_SYLLABLES) for _ in range(n_syllables))
    if rng.chance(0.12):
        label += rng.choice(_DIGITS)
    tld = rng.weighted_choice(_TLDS, _TLD_WEIGHTS)
    return f"{label}{tld}"


def make_username(rng: RandomSource) -> str:
    """A human-convention username (the typo pipeline relies on these)."""
    first = rng.choice(FIRST_NAMES)
    last = rng.choice(LAST_NAMES)
    style = rng.randint(0, 6)
    if style == 0:
        name = f"{first}.{last}"
    elif style == 1:
        name = f"{first}_{last}"
    elif style == 2:
        name = f"{first}{last}"
    elif style == 3:
        name = f"{first[0]}{last}"
    elif style == 4:
        name = f"{first}{last[0]}"
    elif style == 5:
        name = f"{first}-{last}"
    else:
        name = first
    if rng.chance(0.30):
        name += str(rng.randint(1, 99))
    return name


def make_hostname(domain: str, index: int = 1, role: str = "mx") -> str:
    return f"{role}{index}.{domain}"


def make_org_name(rng: RandomSource) -> str:
    """A sender-organisation domain (Chinese universities and companies in
    the paper; shape does not matter, only uniqueness and stability)."""
    stem = "".join(rng.choice(_SYLLABLES) for _ in range(rng.randint(2, 3)))
    kind = rng.weighted_choice(["corp", "edu", "org"], [6, 3, 1])
    if kind == "edu":
        return f"{stem}.edu.cn"
    if kind == "org":
        return f"{stem}.org.cn"
    return f"{stem}.com.cn"
