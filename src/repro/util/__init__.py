"""Shared utilities: deterministic randomness, simulation time, identifiers.

Everything in the simulator is driven by :class:`~repro.util.rng.RandomSource`
instances derived from a single root seed, so any run is exactly
reproducible.  The simulation clock (:mod:`repro.util.clock`) models the
paper's 15-month measurement window (2022-06-14 through 2023-09-06).
"""

from repro.util.rng import RandomSource
from repro.util.clock import SimClock, Window, DAY_SECONDS
from repro.util.text import levenshtein, similarity_ratio, normalize_token

__all__ = [
    "RandomSource",
    "SimClock",
    "Window",
    "DAY_SECONDS",
    "levenshtein",
    "similarity_ratio",
    "normalize_token",
]
