"""Small text utilities shared by the typo analysis and the EBRC tokenizer."""

from __future__ import annotations

import re

_NON_ALNUM = re.compile(r"[^a-z0-9]+")

#: One hostname pattern shared by every masking layer.  Historically
#: ``repro.core.drain`` matched a hard-coded TLD list while
#: ``repro.core.tokenize`` matched any dotted label sequence; the two
#: drifted, so the same NDR could mask differently depending on which
#: path saw it first.  Both now use this pattern: two or more
#: dot-separated labels of ``[a-z0-9-]`` (masking runs on lowercased or
#: lowercase-ish NDR text, so uppercase variants are out of scope here).
HOSTNAME_PATTERN = r"\b[a-z0-9-]+(?:\.[a-z0-9-]+)+\b"

HOSTNAME_RE = re.compile(HOSTNAME_PATTERN)


def levenshtein(a: str, b: str) -> int:
    """Classic edit distance (insert/delete/substitute, all cost 1)."""
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    previous = list(range(len(b) + 1))
    for i, ca in enumerate(a, start=1):
        current = [i]
        for j, cb in enumerate(b, start=1):
            cost = 0 if ca == cb else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def similarity_ratio(a: str, b: str) -> float:
    """Normalised similarity in [0, 1] based on edit distance.

    ``1.0`` means identical; the paper's username-typo pipeline keeps
    candidate pairs with similarity above 0.9.
    """
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein(a, b) / longest


def normalize_token(token: str) -> str:
    """Lowercase and strip non-alphanumeric characters (for fuzzy compares)."""
    return _NON_ALNUM.sub("", token.lower())


_EMAIL_RE = re.compile(r"^([^@\s]+)@([^@\s]+)$")

#: Lazily bound by the first :func:`split_address` call —
#: ``repro.core.fastpath`` imports this module, so the import cannot
#: happen at module level.  The memo is a plain bounded dict rather
#: than an LruMemo: the hit path here is hot enough that the LRU
#: reinsertion would cost more than the regex it saves.
_fastpath = None
_SPLIT_MEMO: dict[str, tuple[str, str]] = {}
_SPLIT_CAP = 65536


def split_address(address: str) -> tuple[str, str]:
    """Split ``user@domain`` into ``(user, domain)``; raises on malformed input.

    Pure string work on heavily repeated inputs (contact books, retry
    loops), so the result is memoised per address when the fast path is
    on.  Malformed addresses raise before anything is cached.
    """
    global _fastpath
    fp = _fastpath
    if fp is None:
        from repro.core import fastpath as fp

        _fastpath = fp
    if fp.enabled():
        memo = _SPLIT_MEMO
        value = memo.get(address)
        if value is None:
            if len(memo) >= _SPLIT_CAP:
                memo.clear()
            value = memo[address] = _split_address_impl(address)
        return value
    return _split_address_impl(address)


def _split_address_impl(address: str) -> tuple[str, str]:
    m = _EMAIL_RE.match(address)
    if not m:
        raise ValueError(f"malformed email address: {address!r}")
    return m.group(1), m.group(2).lower()


def is_valid_address(address: str) -> bool:
    return _EMAIL_RE.match(address) is not None
