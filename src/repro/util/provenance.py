"""Machine provenance for benchmark artifacts.

Every ``BENCH_*.json`` writer stamps its payload with the interpreter
and host it ran on, so two artifacts can be compared knowing whether a
speedup delta is code or hardware.  Kept dependency-free: everything
comes from the standard library, and the repro version from the package
itself.
"""

from __future__ import annotations

import os
import platform


def bench_provenance() -> dict:
    """Return the provenance block embedded in benchmark artifacts."""
    from repro import __version__

    return {
        "cpu_count": os.cpu_count(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "repro_version": __version__,
    }
