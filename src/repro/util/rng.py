"""Deterministic random sources.

The whole simulator is seeded from a single integer.  Subsystems never share
a raw :class:`random.Random`; instead each asks for a *named child* of its
parent source.  Child seeds are derived by hashing the parent seed together
with the child name, so adding a new consumer never perturbs the stream seen
by existing consumers (a property plain ``Random.randrange`` fan-out does not
have).
"""

from __future__ import annotations

import bisect
import hashlib
import itertools
import math
import random
from typing import Generic, Iterable, Sequence, TypeVar

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def derive_seed(seed: int, name: str) -> int:
    """Derive a stable 64-bit child seed from ``seed`` and ``name``."""
    digest = hashlib.sha256(f"{seed & _MASK64}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomSource:
    """A named, seedable random stream with domain-specific helpers.

    Wraps :class:`random.Random` and adds the sampling primitives the
    simulator needs (Zipf ranks, bounded log-normals, weighted choices with
    stable ordering).
    """

    def __init__(self, seed: int, name: str = "root") -> None:
        self.seed = seed & _MASK64
        self.name = name
        self._rng = random.Random(self.seed)

    def child(self, name: str) -> "RandomSource":
        """Return an independent stream derived from this one."""
        return RandomSource(derive_seed(self.seed, name), name=f"{self.name}/{name}")

    # -- explicit state snapshot --------------------------------------------

    def getstate(self) -> dict:
        """Snapshot this stream's cursor as a JSON-encodable payload.

        The payload identifies the stream (``seed``, ``name``) and carries
        the underlying Mersenne Twister state verbatim.  ``child`` seeds
        are derived from the *static* ``seed``, so restoring a cursor via
        :meth:`setstate` never changes which children this source hands
        out — only where its own draw sequence continues.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {
            "seed": self.seed,
            "name": self.name,
            "cursor": [version, list(internal), gauss_next],
        }

    def setstate(self, state: dict) -> None:
        """Restore a cursor captured by :meth:`getstate`.

        The payload must belong to *this* stream: a ``seed`` or ``name``
        mismatch raises :class:`ValueError` rather than silently splicing
        one subsystem's draw sequence into another.
        """
        if state.get("seed") != self.seed or state.get("name") != self.name:
            raise ValueError(
                f"state for stream {state.get('name')!r} (seed {state.get('seed')!r}) "
                f"cannot be restored into {self.name!r} (seed {self.seed})"
            )
        version, internal, gauss_next = state["cursor"]
        self._rng.setstate((version, tuple(internal), gauss_next))

    @classmethod
    def fromstate(cls, state: dict) -> "RandomSource":
        """Rebuild a stream (seed, name, and cursor) from a payload."""
        source = cls(state["seed"], name=state["name"])
        source.setstate(state)
        return source

    # -- thin pass-throughs -------------------------------------------------

    def random(self) -> float:
        return self._rng.random()

    def randint(self, a: int, b: int) -> int:
        return self._rng.randint(a, b)

    def uniform(self, a: float, b: float) -> float:
        return self._rng.uniform(a, b)

    def choice(self, seq: Sequence[T]) -> T:
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return self._rng.choice(seq)

    def sample(self, seq: Sequence[T], k: int) -> list[T]:
        return self._rng.sample(seq, k)

    def shuffle(self, seq: list[T]) -> None:
        self._rng.shuffle(seq)

    def gauss(self, mu: float, sigma: float) -> float:
        return self._rng.gauss(mu, sigma)

    def expovariate(self, lambd: float) -> float:
        return self._rng.expovariate(lambd)

    # -- domain helpers -----------------------------------------------------

    def chance(self, p: float) -> bool:
        """Bernoulli trial with success probability ``p`` (clamped to [0,1])."""
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return self._rng.random() < p

    def weighted_choice(self, items: Sequence[T], weights: Sequence[float]) -> T:
        """Choose one item proportionally to ``weights``."""
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise IndexError("cannot choose from an empty sequence")
        return self._rng.choices(items, weights=weights, k=1)[0]

    def weighted_choice_cum(
        self, items: Sequence[T], cum_weights: Sequence[float], total: float
    ) -> T:
        """:meth:`weighted_choice` with a caller-precomputed cumulative table.

        Draw-for-draw identical to ``weighted_choice(items, weights)`` when
        ``cum_weights = list(accumulate(weights))`` and
        ``total = cum_weights[-1] + 0.0`` — it replays the exact arithmetic
        of :meth:`random.Random.choices` (one ``random()`` scaled by the
        float total, then a right-bisect capped at ``len(items) - 1``), so
        hot paths can cache the table without perturbing the stream.
        """
        if total <= 0.0:
            raise ValueError("total of weights must be greater than zero")
        u = self._rng.random() * total
        return items[bisect.bisect_right(cum_weights, u, 0, len(items) - 1)]

    def zipf_rank(self, n: int, alpha: float = 1.1) -> int:
        """Sample a rank in ``[0, n)`` from a truncated Zipf distribution.

        Uses inverse-CDF over the (cached) harmonic weights; heavier head for
        larger ``alpha``.
        """
        if n <= 0:
            raise ValueError("n must be positive")
        cdf = self._zipf_cdf(n, alpha)
        u = self._rng.random()
        lo, hi = 0, n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo

    _zipf_cache: dict[tuple[int, float], list[float]] = {}

    @classmethod
    def _zipf_cdf(cls, n: int, alpha: float) -> list[float]:
        key = (n, alpha)
        cached = cls._zipf_cache.get(key)
        if cached is not None:
            return cached
        weights = [1.0 / (r + 1) ** alpha for r in range(n)]
        total = sum(weights)
        acc = 0.0
        cdf = []
        for w in weights:
            acc += w
            cdf.append(acc / total)
        cls._zipf_cache[key] = cdf
        return cdf

    def lognormal(self, median: float, sigma: float, cap: float | None = None) -> float:
        """Sample a log-normal with the given *median* and shape ``sigma``.

        ``median`` parameterisation is friendlier than ``mu`` for latency
        modelling.  Optionally truncates at ``cap``.
        """
        if median <= 0:
            raise ValueError("median must be positive")
        value = math.exp(math.log(median) + sigma * self._rng.gauss(0.0, 1.0))
        if cap is not None:
            value = min(value, cap)
        return value

    def pareto_duration(self, minimum: float, alpha: float, cap: float | None = None) -> float:
        """Heavy-tailed positive duration: Pareto(min, alpha), optionally capped.

        Used for "time until someone fixes it" distributions, which the paper
        shows are extremely heavy tailed (quota issues lasting 86 days on
        average).
        """
        if minimum <= 0 or alpha <= 0:
            raise ValueError("minimum and alpha must be positive")
        u = 1.0 - self._rng.random()
        value = minimum / (u ** (1.0 / alpha))
        if cap is not None:
            value = min(value, cap)
        return value

    def pick_k(self, seq: Sequence[T], k: int) -> list[T]:
        """Sample ``min(k, len(seq))`` distinct elements."""
        k = min(k, len(seq))
        return self._rng.sample(seq, k)

    def subset(self, seq: Iterable[T], p: float) -> list[T]:
        """Independent Bernoulli(p) subset of ``seq`` (order preserved)."""
        return [x for x in seq if self.chance(p)]

    def sampler(self, items: Sequence[T], weights: Sequence[float]) -> "WeightedSampler[T]":
        """Build a reusable O(log n) weighted sampler over ``items``."""
        return WeightedSampler(items, weights, self)


class WeightedSampler(Generic[T]):
    """Precomputed cumulative-weight sampler.

    ``RandomSource.weighted_choice`` is O(n) per draw; hot paths (choosing
    a receiver domain for every email) use this instead.
    """

    def __init__(self, items: Sequence[T], weights: Sequence[float], rng: RandomSource) -> None:
        if len(items) != len(weights):
            raise ValueError("items and weights must have the same length")
        if not items:
            raise ValueError("sampler needs at least one item")
        if any(w < 0 for w in weights):
            raise ValueError("weights must be non-negative")
        self._items = list(items)
        self._cumulative = list(itertools.accumulate(weights))
        self._total = self._cumulative[-1]
        if self._total <= 0:
            raise ValueError("total weight must be positive")
        self._rng = rng

    def draw(self) -> T:
        u = self._rng.random() * self._total
        index = bisect.bisect_right(self._cumulative, u)
        if index >= len(self._items):
            index = len(self._items) - 1
        return self._items[index]

    def table(self) -> tuple[list[T], list[float], float]:
        """``(items, cum_weights, total)`` — the exact arithmetic of
        :meth:`draw`, for replayers (the columnar delivery executor)
        that must consume the same draw sequence without the method
        dispatch.  The lists are the live internals: treat as read-only.
        """
        return self._items, self._cumulative, self._total

    def with_rng(self, rng: RandomSource) -> "WeightedSampler[T]":
        """A view over the same items/weights drawing from ``rng``.

        The cumulative table is shared (never copied), so slice-local
        samplers — one per day, per worker, per partition — cost O(1) to
        create while their draw sequences stay fully independent of each
        other and of this sampler.
        """
        view: WeightedSampler[T] = object.__new__(WeightedSampler)
        view._items = self._items
        view._cumulative = self._cumulative
        view._total = self._total
        view._rng = rng
        return view

    def __len__(self) -> int:
        return len(self._items)
