"""Simulation time.

The measurement window of the paper runs from 2022-06-14 to 2023-09-06
(15 months, 450 days).  All simulator timestamps are POSIX seconds (UTC);
helper methods convert to day/week/month indexes relative to the window
start, which is what the longitudinal analyses operate on.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

DAY_SECONDS = 86_400
WEEK_SECONDS = 7 * DAY_SECONDS

#: Default measurement window (matches the paper).
DEFAULT_START = datetime(2022, 6, 14, tzinfo=timezone.utc)
DEFAULT_END = datetime(2023, 9, 6, tzinfo=timezone.utc)

#: Chinese New Year 2023 fell on January 22nd; the paper observes a delivery
#: surge in the weeks before it.
CHINESE_NEW_YEAR_2023 = datetime(2023, 1, 22, tzinfo=timezone.utc)


@dataclass(frozen=True)
class Window:
    """A half-open interval ``[start, end)`` in POSIX seconds.

    Used for misconfiguration windows, quota-full windows, DNSBL listings,
    domain-registration lifetimes, etc.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise ValueError(f"window end {self.end} before start {self.start}")

    def contains(self, t: float) -> bool:
        return self.start <= t < self.end

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def duration_days(self) -> float:
        return self.duration / DAY_SECONDS

    def overlaps(self, other: "Window") -> bool:
        return self.start < other.end and other.start < self.end

    def intersect(self, other: "Window") -> "Window | None":
        lo = max(self.start, other.start)
        hi = min(self.end, other.end)
        if lo >= hi:
            return None
        return Window(lo, hi)


class SimClock:
    """Maps between POSIX timestamps and window-relative indexes."""

    def __init__(
        self,
        start: datetime = DEFAULT_START,
        end: datetime = DEFAULT_END,
    ) -> None:
        if end <= start:
            raise ValueError("end must be after start")
        self.start = start
        self.end = end
        self.start_ts = start.timestamp()
        self.end_ts = end.timestamp()

    @property
    def n_days(self) -> int:
        return int((self.end_ts - self.start_ts) // DAY_SECONDS)

    @property
    def n_weeks(self) -> int:
        return (self.n_days + 6) // 7

    def window(self) -> Window:
        return Window(self.start_ts, self.end_ts)

    def contains(self, t: float) -> bool:
        return self.start_ts <= t < self.end_ts

    def day_index(self, t: float) -> int:
        """0-based day offset of timestamp ``t`` from the window start."""
        return int((t - self.start_ts) // DAY_SECONDS)

    def week_index(self, t: float) -> int:
        return int((t - self.start_ts) // WEEK_SECONDS)

    def day_start(self, day: int) -> float:
        return self.start_ts + day * DAY_SECONDS

    def date_of_day(self, day: int) -> datetime:
        return self.start + timedelta(days=day)

    def month_key(self, t: float) -> str:
        """``YYYY-MM`` bucket of timestamp ``t`` (for monthly series)."""
        dt = datetime.fromtimestamp(t, tz=timezone.utc)
        return f"{dt.year:04d}-{dt.month:02d}"

    def month_keys(self) -> list[str]:
        """All month buckets covered by the window, in order."""
        keys: list[str] = []
        cursor = datetime(self.start.year, self.start.month, 1, tzinfo=timezone.utc)
        while cursor < self.end:
            keys.append(f"{cursor.year:04d}-{cursor.month:02d}")
            if cursor.month == 12:
                cursor = cursor.replace(year=cursor.year + 1, month=1)
            else:
                cursor = cursor.replace(month=cursor.month + 1)
        return keys

    def weekday(self, t: float) -> int:
        """Weekday of timestamp ``t`` (Monday=0 .. Sunday=6)."""
        return datetime.fromtimestamp(t, tz=timezone.utc).weekday()

    def is_weekend(self, t: float) -> bool:
        return self.weekday(t) >= 5

    def format_ts(self, t: float) -> str:
        """Timestamp in the dataset's ``YYYY-MM-DD HH:MM:SS`` format."""
        return datetime.fromtimestamp(t, tz=timezone.utc).strftime("%Y-%m-%d %H:%M:%S")
