"""The batch oracle: the same table payload from a materialized dataset.

``batch_tables`` computes every number with the reference implementations
in :mod:`repro.analysis` (plus the shared float helpers of the analytics
package, so means and sketch quantiles follow the exact same arithmetic)
and emits the payload structure of
:meth:`repro.analytics.suite.TableSuite.tables`.  The streaming suite is
asserted byte-identical against this on materialized corpora — in tests
and in the CI ``analytics-diff`` job.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.blocklist import (
    blocklist_recovery_rate,
    dnsbl_adoption_counts,
    filter_divergence,
    greylist_pass_delays,
    greylisting_domains,
    t5_daily_counts,
)
from repro.analysis.degrees import daily_series, degree_breakdown, monthly_series
from repro.analysis.label import LabeledDataset, NDRLabeler
from repro.analysis.misconfig import (
    auth_error_durations,
    mx_error_durations,
    quota_error_durations,
)
from repro.analysis.rankings import table3_top_domains
from repro.analysis.squatting import PROBED_PROVIDERS
from repro.analytics.accumulators import ScalarStat
from repro.analytics.suite import (
    SUITE_SNAPSHOT_VERSION,
    episode_stats,
    greylist_sketch,
    recovery_sketch,
)
from repro.core.taxonomy import BounceDegree, BounceType
from repro.delivery.dataset import DeliveryDataset
from repro.util.clock import SimClock


def batch_tables(
    dataset: DeliveryDataset,
    clock: SimClock | None = None,
    top: int = 10,
    labeler: NDRLabeler | None = None,
) -> dict:
    """Compute the full table payload the batch way (dataset in memory)."""
    clock = clock if clock is not None else SimClock()
    labeled = LabeledDataset(dataset, labeler)
    breakdown = degree_breakdown(dataset)

    soft_attempts = ScalarStat()
    rec_stat = ScalarStat()
    rec_sketch = recovery_sketch()
    for record in dataset:
        if record.bounce_degree is not BounceDegree.SOFT_BOUNCED:
            continue
        soft_attempts.observe(record.n_attempts)
        success = next(a for a in record.attempts if a.succeeded)
        delay_h = (success.t - record.start_time) / 3600.0
        rec_stat.observe(delay_h)
        rec_sketch.observe(delay_h)

    distribution = labeled.type_distribution()
    n_classified = sum(distribution.values())
    type_rows = sorted(
        ((t.value, n) for t, n in distribution.items()), key=lambda kv: (-kv[1], kv[0])
    )

    daily = daily_series(dataset, clock)
    monthly = monthly_series(dataset, clock)

    grey_stat = ScalarStat()
    grey_sk = greylist_sketch()
    for delay in greylist_pass_delays(labeled):
        grey_stat.observe(delay)
        grey_sk.observe(delay)
    blocked_normal, blocked_spam = t5_daily_counts(labeled, clock)
    divergence = filter_divergence(labeled)

    failed_domains: Counter = Counter()
    prov_t8: Counter = Counter()
    delivered_domains: set[str] = set()
    delivered_addrs: set[str] = set()
    for record in dataset:
        if record.delivered:
            delivered_domains.add(record.receiver_domain)
            delivered_addrs.add(record.receiver.lower())
    for record, bounce_type in labeled.classified_records():
        if bounce_type is BounceType.T2:
            failed_domains[record.receiver_domain] += 1
        elif bounce_type is BounceType.T8 and record.receiver_domain in PROBED_PROVIDERS:
            prov_t8[record.receiver.lower()] += 1

    return {
        "version": SUITE_SNAPSHOT_VERSION,
        "n_records": len(dataset),
        "overview": {
            "n_emails": breakdown.n_emails,
            "n_non": breakdown.n_non,
            "n_soft": breakdown.n_soft,
            "n_hard": breakdown.n_hard,
            "mean_attempts_soft": soft_attempts.mean,
            "recovery": {
                "n": rec_stat.n,
                "mean_h": rec_stat.mean,
                "p50_h": rec_sketch.quantile(0.5),
                "p90_h": rec_sketch.quantile(0.9),
            },
        },
        "types": {
            "rows": [[t, n] for t, n in type_rows],
            "n_classified": n_classified,
            "n_ambiguous": labeled.n_ambiguous(),
            "n_bounced": labeled.n_bounced(),
        },
        "volume": {
            "monthly": [[k, v] for k, v in monthly.items()],
            "daily": {
                "non": daily.non_bounced,
                "soft": daily.soft_bounced,
                "hard": daily.hard_bounced,
            },
        },
        "top_domains": [
            [
                r.key,
                r.email_volume,
                r.hard_fraction,
                r.soft_fraction,
                r.major_type.value if r.major_type else "",
                r.major_type_share,
            ]
            for r in table3_top_domains(labeled, top=top)
        ],
        "blocklist": {
            "blocked_normal": sum(blocked_normal),
            "blocked_spam": sum(blocked_spam),
            "blocked_normal_per_day": blocked_normal,
            "blocked_spam_per_day": blocked_spam,
            "recovery_rate": blocklist_recovery_rate(labeled),
            "n_greylist_domains": len(greylisting_domains(labeled)),
            "greylist_delay": {
                "n": grey_stat.n,
                "mean_s": grey_stat.mean,
                "p50_s": grey_sk.quantile(0.5),
                "p95_s": grey_sk.quantile(0.95),
            },
            "divergence": {
                "spam_total": divergence.coremail_spam_total,
                "spam_accepted": divergence.coremail_spam_receiver_accepts,
                "t13_total": divergence.receiver_spam_total,
                "t13_normal": divergence.receiver_spam_coremail_normal,
            },
            "adoption": sorted(
                [k, v] for k, v in dnsbl_adoption_counts(labeled, clock).items()
            ),
        },
        "misconfig": {
            "auth": episode_stats(auth_error_durations(labeled, clock).episodes),
            "mx": episode_stats(mx_error_durations(labeled, clock).episodes),
            "quota": episode_stats(quota_error_durations(labeled, clock).episodes),
        },
        "squatting_inputs": {
            "n_failed_domains": len(failed_domains),
            "n_failed_domain_emails": sum(failed_domains.values()),
            "n_provider_t8_addresses": len(prov_t8),
            "n_provider_t8_emails": sum(prov_t8.values()),
            "n_delivered_domains": len(delivered_domains),
            "n_delivered_addresses": len(delivered_addrs),
        },
    }
