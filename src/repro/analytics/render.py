"""Plain-text rendering of the table-suite payload.

One renderer serves both producers: the streaming path
(:meth:`repro.analytics.suite.TableSuite.tables`) and the batch oracle
(:func:`repro.analytics.batch.batch_tables`) emit the same payload
structure, so identical payloads render to identical bytes — which is
exactly what the CI ``analytics-diff`` job asserts.
"""

from __future__ import annotations

from repro.analysis.report import pct, render_cdf, render_table, sparkline


def _fmt_mean(value: float) -> str:
    return f"{value:.4f}"


def _episode_section(name: str, stats: dict) -> list[str]:
    lines = [
        f"{name}: {stats['n_episodes']} episodes over {stats['n_entities']} entities "
        f"({stats['n_censored']} censored)",
        f"  mean {stats['mean_days']:.3f} d  median {stats['median_days']:.3f} d  "
        f">30d {pct(stats['over_30d'])}",
    ]
    unc = stats["uncensored"]
    lines.append(
        f"  uncensored: n={unc['n']}  mean {unc['mean_days']:.3f} d  "
        f"median {unc['median_days']:.3f} d"
    )
    grid = [g for g, _ in stats["cdf"]]
    cdf = [v for _, v in stats["cdf"]]
    lines.append(render_cdf(f"{name} episode duration CDF", grid, cdf))
    return lines


def render_report(payload: dict, top: int = 10) -> str:
    """Render the full table suite as the `repro report` text artifact."""
    parts: list[str] = []
    ov = payload["overview"]
    n = ov["n_emails"]

    def share(x: int) -> str:
        return pct(x / n) if n else pct(0.0)

    parts.append("== Overview ==")
    parts.append(f"emails: {n}")
    parts.append(
        "non/soft/hard: "
        f"{ov['n_non']} ({share(ov['n_non'])}) / "
        f"{ov['n_soft']} ({share(ov['n_soft'])}) / "
        f"{ov['n_hard']} ({share(ov['n_hard'])})"
    )
    parts.append(f"mean attempts (soft-bounced): {_fmt_mean(ov['mean_attempts_soft'])}")
    rec = ov["recovery"]
    parts.append(
        f"soft-bounce recovery: n={rec['n']}  mean {rec['mean_h']:.3f} h  "
        f"p50~{rec['p50_h']:.3f} h  p90~{rec['p90_h']:.3f} h"
    )

    types = payload["types"]
    parts.append("")
    parts.append(
        render_table(
            "== Bounce types (Table 1) ==",
            ["type", "emails", "share"],
            [
                [t, c, pct(c / types["n_classified"]) if types["n_classified"] else pct(0.0)]
                for t, c in types["rows"]
            ],
        )
    )
    parts.append(
        f"classified: {types['n_classified']}  ambiguous: {types['n_ambiguous']}  "
        f"bounced: {types['n_bounced']}"
    )

    vol = payload["volume"]
    parts.append("")
    parts.append(
        render_table(
            "== Monthly volume (Fig 5) ==",
            ["month", "emails"],
            [[k, v] for k, v in vol["monthly"]],
        )
    )
    daily = vol["daily"]
    for label in ("non", "soft", "hard"):
        parts.append(f"daily {label}: {sparkline(daily[label])}")

    parts.append("")
    parts.append(
        render_table(
            f"== Top-{top} receiver domains (Table 3) ==",
            ["domain", "emails", "hard", "soft", "major type", "share"],
            [
                [key, volume, pct(hard), pct(soft), major, pct(major_share)]
                for key, volume, hard, soft, major, major_share in payload["top_domains"]
            ],
        )
    )

    bl = payload["blocklist"]
    parts.append("")
    parts.append("== Blocklists and filters (Fig 6) ==")
    total_blocked = bl["blocked_normal"] + bl["blocked_spam"]
    normal_share = bl["blocked_normal"] / total_blocked if total_blocked else 0.0
    parts.append(
        f"blocklist-bounced emails: {total_blocked} "
        f"(normal {bl['blocked_normal']} = {pct(normal_share)}, spam {bl['blocked_spam']})"
    )
    parts.append(f"daily blocked (normal): {sparkline(bl['blocked_normal_per_day'])}")
    parts.append(f"daily blocked (spam):   {sparkline(bl['blocked_spam_per_day'])}")
    parts.append(f"blocklist recovery rate: {pct(bl['recovery_rate'])}")
    grey = bl["greylist_delay"]
    parts.append(
        f"greylisting domains: {bl['n_greylist_domains']}  pass delay: n={grey['n']}  "
        f"mean {grey['mean_s']:.3f} s  p50~{grey['p50_s']:.3f} s  p95~{grey['p95_s']:.3f} s"
    )
    div = bl["divergence"]
    spam_acc = div["spam_accepted"] / div["spam_total"] if div["spam_total"] else 0.0
    t13_norm = div["t13_normal"] / div["t13_total"] if div["t13_total"] else 0.0
    parts.append(
        f"filter divergence: Coremail-spam accepted elsewhere {pct(spam_acc)} "
        f"({div['spam_accepted']}/{div['spam_total']}); "
        f"receiver-spam flagged Normal {pct(t13_norm)} "
        f"({div['t13_normal']}/{div['t13_total']})"
    )
    if bl["adoption"]:
        parts.append(
            render_table(
                "blocklist adoption by receiver domains (first T5 month)",
                ["month", "domains"],
                bl["adoption"],
            )
        )

    parts.append("")
    parts.append("== Misconfiguration durations (Fig 7) ==")
    mis = payload["misconfig"]
    parts.extend(_episode_section("auth (T3, sender domains)", mis["auth"]))
    parts.extend(_episode_section("mx (T2, receiver domains)", mis["mx"]))
    parts.extend(_episode_section("quota (T9, receiver addresses)", mis["quota"]))

    sq = payload["squatting_inputs"]
    parts.append("")
    parts.append("== Squatting surface (Section 5 inputs) ==")
    parts.append(
        f"DNS-failed receiver domains: {sq['n_failed_domains']} "
        f"({sq['n_failed_domain_emails']} emails)"
    )
    parts.append(
        f"provider T8 addresses: {sq['n_provider_t8_addresses']} "
        f"({sq['n_provider_t8_emails']} emails)"
    )
    parts.append(
        f"delivered-to receiver domains: {sq['n_delivered_domains']}  "
        f"addresses: {sq['n_delivered_addresses']}"
    )

    parts.append("")
    parts.append(f"records: {payload['n_records']}")
    return "\n".join(parts) + "\n"
