"""The streaming table suite: every paper table from one pass.

:class:`TableSuite` folds :class:`~repro.delivery.records.DeliveryRecord`
streams into the accumulator algebra of
:mod:`repro.analytics.accumulators` and reconstructs each table/figure
computation of :mod:`repro.analysis` (rootcause, rankings, blocklist,
misconfig, squatting) from accumulated state:

* the *records-only* suite — :meth:`tables` / the shared renderer — needs
  nothing but the stream and is what `repro report --shards` byte-diffs
  against the materialized batch twin in
  :mod:`repro.analytics.batch`;
* the *world twins* — :meth:`root_causes`, :meth:`table4`,
  :meth:`squatting`, … — additionally take the simulator-side services
  the batch functions take (breach corpus, resolver, geo, registrar) and
  return the **same dataclasses** as the batch implementations.

Suites merge like telemetry snapshots: ``merge`` is commutative and
associative, so per-worker partials combine to the same state for any
worker count, and every rendered number is either an integer, a ratio of
integers, an exactly-summed (Fraction) mean, a sketch statistic, or a
float sum over a deterministically sorted list — all invariant under
stream partitioning.
"""

from __future__ import annotations

from collections import Counter

from repro.analysis.blocklist import FilterDivergence
from repro.analysis.label import RuleLabeler
from repro.analysis.malicious import BulkSpamReport, GuessingCampaign
from repro.analysis.misconfig import DurationReport, ErrorEpisode
from repro.analysis.rankings import BounceRateRow, CountryRow
from repro.analysis.rootcause import RootCauseReport, RootCauseRow
from repro.analysis.squatting import (
    PROBED_PROVIDERS,
    SquattingReport,
    VulnerableDomain,
    VulnerableUsername,
    WeeklySeries,
)
from repro.analysis.typos import DomainTypoFinding, UsernameTypoFinding
from repro.analytics.accumulators import (
    DistinctSet,
    KeyedDistinct,
    KeyedEpisodes,
    KeyedMax,
    KeyedMin,
    LabeledCounter,
    QuantileSketch,
    ScalarStat,
    SnapshotError,
    TopK,
    restore,
)
from repro.core.taxonomy import BounceDegree, BounceType, RootCause
from repro.dnssim.records import RecordType, ResolveStatus
from repro.typosquat.generate import classify_typo, domain_typos
from repro.util.clock import DAY_SECONDS, SimClock
from repro.util.text import similarity_ratio, split_address

SUITE_SNAPSHOT_VERSION = 1

#: Field separator inside compound accumulator keys.  U+001F never occurs
#: in the dataset's addresses or domains.
SEP = "\x1f"

#: CDF grid (days) for the Fig 7 duration curves.
DURATION_GRID_DAYS = (1.0, 2.0, 4.0, 7.0, 14.0, 30.0, 60.0, 120.0)

_DEGREE_KEY = {
    BounceDegree.NON_BOUNCED: "non",
    BounceDegree.SOFT_BOUNCED: "soft",
    BounceDegree.HARD_BOUNCED: "hard",
}


def clock_from_ts(start_ts: float, end_ts: float) -> SimClock:
    """Rebuild a :class:`SimClock` from serialized epoch bounds."""
    from datetime import datetime, timezone

    return SimClock(
        start=datetime.fromtimestamp(start_ts, tz=timezone.utc),
        end=datetime.fromtimestamp(end_ts, tz=timezone.utc),
    )


def recovery_sketch() -> QuantileSketch:
    """Soft-bounce recovery delays in hours (sub-second floor)."""
    return QuantileSketch(min_bound=1e-3)


def greylist_sketch() -> QuantileSketch:
    """Greylist pass delays in seconds."""
    return QuantileSketch(min_bound=1.0)


def episode_stats(episodes: list[ErrorEpisode]) -> dict:
    """Deterministic summary of a misconfiguration-episode population.

    Both the streaming and the batch path feed their episodes through
    this one function, with one canonical sort order, so the float sums
    match bit for bit.
    """
    ordered = sorted(episodes, key=lambda e: (e.entity, e.start, e.end))
    durations = [e.duration_days for e in ordered]
    n = len(durations)
    stats = {
        "n_entities": len({e.entity for e in ordered}),
        "n_episodes": n,
        "n_censored": sum(1 for e in ordered if e.censored),
        "mean_days": sum(durations) / n if n else 0.0,
        "median_days": _median(durations),
        "over_30d": sum(1 for d in durations if d > 30.0) / n if n else 0.0,
        "cdf": [
            [g, (sum(1 for d in durations if d <= g) / n) if n else 0.0]
            for g in DURATION_GRID_DAYS
        ],
    }
    open_durations = [e.duration_days for e in ordered if not e.censored]
    m = len(open_durations)
    stats["uncensored"] = {
        "n": m,
        "mean_days": sum(open_durations) / m if m else 0.0,
        "median_days": _median(open_durations),
    }
    return stats


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    if not ordered:
        return 0.0
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


class TableSuite:
    """One-pass mergeable twin of the batch analysis suite."""

    def __init__(
        self,
        clock: SimClock | None = None,
        providers: tuple[str, ...] = PROBED_PROVIDERS,
        topk_capacity: int = 50,
    ) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.providers = tuple(providers)
        self.n_records = 0
        self._labeler = RuleLabeler()
        self._acc = {
            # overview / Fig 5
            "totals": LabeledCounter(),
            "soft_attempts": ScalarStat(),
            "recovery_hours": ScalarStat(),
            "recovery_sketch": recovery_sketch(),
            "types": LabeledCounter(),
            "day_degree": LabeledCounter(),
            "monthly": LabeledCounter(),
            # rankings (Tables 3-5)
            "rd_volume": LabeledCounter(),
            "rd_hard": LabeledCounter(),
            "rd_soft": LabeledCounter(),
            "rd_type": LabeledCounter(),
            "ip_volume": LabeledCounter(),
            "ip_hard": LabeledCounter(),
            "ip_soft": LabeledCounter(),
            "ip_type": LabeledCounter(),
            "sd_volume": LabeledCounter(),
            "sd_hard": LabeledCounter(),
            "sd_soft": LabeledCounter(),
            # blocklist / greylist / filters (Fig 6)
            "t5_day": LabeledCounter(),
            "t5_first_seen": KeyedMin(),
            "t6_domains": DistinctSet(),
            "greylist_delay_s": ScalarStat(),
            "greylist_sketch": greylist_sketch(),
            # misconfiguration episodes (Fig 7; the paper's gap defaults)
            "auth_eps": KeyedEpisodes(gap=10.0 * DAY_SECONDS),
            "mx_eps": KeyedEpisodes(gap=4.0 * DAY_SECONDS),
            "quota_eps": KeyedEpisodes(gap=40.0 * DAY_SECONDS),
            "last_success": KeyedMax(),
            # root-cause decision tuples (Table 2)
            "t8_dec": LabeledCounter(),
            "t13_dec": LabeledCounter(),
            "t2_dec": LabeledCounter(),
            # guessing / bulk-spam detector inputs
            "pair_traffic": LabeledCounter(),
            "pair_delivered_n": LabeledCounter(),
            "pair_t8_users": KeyedDistinct(),
            "pair_hit_users": KeyedDistinct(),
            "spam_recipients": KeyedDistinct(),
            # typo detector inputs
            "t8_addr_senders": KeyedDistinct(),
            "t8_addr_counts": LabeledCounter(),
            "deliv_user_sets": KeyedDistinct(),
            "rd_senders": KeyedDistinct(),
            "t2_senders": KeyedDistinct(),
            "delivered_domains": DistinctSet(),
            "delivered_addrs": DistinctSet(),
            # squatting (Fig 9)
            "prov_t8_counts": LabeledCounter(),
            "prov_t8_senders": KeyedDistinct(),
            "week_dom_n": LabeledCounter(),
            "week_dom_senders": KeyedDistinct(),
            "week_addr_n": LabeledCounter(),
            "week_addr_senders": KeyedDistinct(),
            # live heavy-hitter view (approximate; serve only, never in
            # the byte-diffed report)
            "top_senders": TopK(topk_capacity),
            "top_receivers": TopK(topk_capacity),
        }

    # -- ingestion -------------------------------------------------------------

    def observe(self, record) -> None:
        """Fold one delivery record into every accumulator."""
        a = self._acc
        clock = self.clock
        self.n_records += 1

        degree = record.bounce_degree
        deg = _DEGREE_KEY[degree]
        totals = a["totals"]
        totals.observe("emails")
        totals.observe(deg)

        t0 = record.start_time
        day = clock.day_index(t0)
        in_days = 0 <= day < clock.n_days
        if in_days:
            a["day_degree"].observe(f"{day}{SEP}{deg}")
        a["monthly"].observe(clock.month_key(t0))

        sd = record.sender_domain
        rd = record.receiver_domain
        sender = record.sender
        receiver = record.receiver
        recv_lower = receiver.lower()
        delivered = record.delivered

        a["rd_volume"].observe(rd)
        a["sd_volume"].observe(sd)
        if degree is BounceDegree.HARD_BOUNCED:
            a["rd_hard"].observe(rd)
            a["sd_hard"].observe(sd)
        elif degree is BounceDegree.SOFT_BOUNCED:
            a["rd_soft"].observe(rd)
            a["sd_soft"].observe(sd)
        ip = next((att.to_ip for att in record.attempts if att.to_ip), None)
        if ip is not None:
            a["ip_volume"].observe(ip)
            if degree is BounceDegree.HARD_BOUNCED:
                a["ip_hard"].observe(ip)
            elif degree is BounceDegree.SOFT_BOUNCED:
                a["ip_soft"].observe(ip)

        if degree is BounceDegree.SOFT_BOUNCED:
            a["soft_attempts"].observe(record.n_attempts)
            success_t = next(att.t for att in record.attempts if att.succeeded)
            delay_h = (success_t - t0) / 3600.0
            a["recovery_hours"].observe(delay_h)
            a["recovery_sketch"].observe(delay_h)

        if record.email_flag == "Spam":
            totals.observe("flag_spam")
            if delivered:
                totals.observe("flag_spam_delivered")

        pair = f"{sd}{SEP}{rd}"
        a["pair_traffic"].observe(pair)
        a["spam_recipients"].observe(sd, recv_lower)
        a["rd_senders"].observe(rd, sender)
        a["top_senders"].observe(sd)
        a["top_receivers"].observe(rd)

        if delivered:
            a["pair_delivered_n"].observe(pair)
            a["pair_hit_users"].observe(pair, record.receiver_user.lower())
            a["delivered_domains"].observe(rd)
            a["delivered_addrs"].observe(recv_lower)
            try:
                user, dlow = split_address(receiver)
            except ValueError:
                pass
            else:
                a["deliv_user_sets"].observe(f"{sender}{SEP}{dlow}", user.lower())
            for att in record.attempts:
                if att.succeeded:
                    a["last_success"].observe(rd, att.t)
        else:
            final_type = self._labeler.classify(record.final_attempt().result)
            if final_type is BounceType.T8:
                a["pair_t8_users"].observe(pair, record.receiver_user.lower())

        # Fig 9 weekly series keys are deliberately NOT range-guarded —
        # the batch persistence estimator isn't either; the guard is
        # applied when rendering the series.
        week = clock.week_index(t0)
        a["week_dom_n"].observe(f"{rd}{SEP}{week}")
        a["week_dom_senders"].observe(f"{rd}{SEP}{week}", sender)
        addr_domain = recv_lower.rsplit("@", 1)[-1]
        if addr_domain in self.providers:
            a["week_addr_n"].observe(f"{recv_lower}{SEP}{week}{SEP}{rd}")
            a["week_addr_senders"].observe(f"{recv_lower}{SEP}{week}", sender)

        failure = record.first_failure()
        if failure is None:
            return
        totals.observe("bounced")
        btype = self._labeler.classify(failure.result)
        if btype is None:
            totals.observe("ambiguous")
            return
        t = btype.value
        a["types"].observe(t)
        if degree is not BounceDegree.NON_BOUNCED:
            a["rd_type"].observe(f"{rd}{SEP}{t}")
            if ip is not None:
                a["ip_type"].observe(f"{ip}{SEP}{t}")

        if btype is BounceType.T5:
            totals.observe("t5")
            if delivered:
                totals.observe("t5_recovered")
            if in_days:
                flag = "s" if record.email_flag == "Spam" else "n"
                a["t5_day"].observe(f"{day}{SEP}{flag}")
            a["t5_first_seen"].observe(rd, t0)
        elif btype is BounceType.T6:
            a["t6_domains"].observe(rd)
            if delivered:
                success_t = next(att.t for att in record.attempts if att.succeeded)
                delay = success_t - t0
                a["greylist_delay_s"].observe(delay)
                a["greylist_sketch"].observe(delay)
        elif btype is BounceType.T13:
            a["t13_dec"].observe(sd)
            if record.email_flag == "Normal":
                totals.observe("t13_normal")
        elif btype is BounceType.T2:
            a["t2_dec"].observe(rd)
            a["t2_senders"].observe(rd, sender)
            a["mx_eps"].observe(rd, t0)
        elif btype is BounceType.T3:
            a["auth_eps"].observe(sd, t0)
        elif btype is BounceType.T9:
            a["quota_eps"].observe(recv_lower, t0)
        elif btype is BounceType.T8:
            text = failure.result.lower()
            inactive = "inactive" in text or "disabled" in text
            a["t8_dec"].observe(
                f"{sd}{SEP}{rd}{SEP}{recv_lower}{SEP}{1 if inactive else 0}"
            )
            if not inactive:
                a["t8_addr_senders"].observe(recv_lower, sender)
                a["t8_addr_counts"].observe(recv_lower)
            if rd in self.providers:
                a["prov_t8_counts"].observe(recv_lower)
                a["prov_t8_senders"].observe(recv_lower, sender)

    def observe_many(self, records) -> int:
        n = 0
        for record in records:
            self.observe(record)
            n += 1
        return n

    @classmethod
    def from_records(cls, records, clock: SimClock | None = None) -> "TableSuite":
        suite = cls(clock)
        suite.observe_many(records)
        return suite

    # -- algebra ---------------------------------------------------------------

    def merge(self, other: "TableSuite") -> "TableSuite":
        if not isinstance(other, TableSuite):
            raise SnapshotError(f"cannot merge {type(other).__name__} into TableSuite")
        if (
            other.clock.start_ts != self.clock.start_ts
            or other.clock.end_ts != self.clock.end_ts
            or other.providers != self.providers
        ):
            raise SnapshotError("table suites disagree on clock window or providers")
        self.n_records += other.n_records
        for name, acc in self._acc.items():
            acc.merge(other._acc[name])
        return self

    def snapshot(self) -> dict:
        return {
            "kind": "table_suite",
            "v": SUITE_SNAPSHOT_VERSION,
            "clock": [self.clock.start_ts, self.clock.end_ts],
            "providers": list(self.providers),
            "n_records": self.n_records,
            "acc": {name: acc.snapshot() for name, acc in self._acc.items()},
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "TableSuite":
        if not isinstance(snapshot, dict) or snapshot.get("kind") != "table_suite":
            raise SnapshotError("not a table_suite snapshot")
        version = snapshot.get("v")
        if not isinstance(version, int) or not 1 <= version <= SUITE_SNAPSHOT_VERSION:
            raise SnapshotError(
                f"table_suite: cannot restore snapshot version {version!r} "
                f"(this build reads versions 1..{SUITE_SNAPSHOT_VERSION})"
            )
        start_ts, end_ts = snapshot["clock"]
        clock = clock_from_ts(start_ts, end_ts)
        suite = cls(clock, providers=tuple(snapshot["providers"]))
        suite.n_records = int(snapshot["n_records"])
        saved = snapshot["acc"]
        for name in suite._acc:
            if name not in saved:
                raise SnapshotError(f"table_suite snapshot missing accumulator {name!r}")
            suite._acc[name] = restore(saved[name])
        return suite

    def merge_snapshot(self, snapshot: dict) -> "TableSuite":
        return self.merge(TableSuite.from_snapshot(snapshot))

    # -- internal views --------------------------------------------------------

    def _split2(self, name: str) -> dict[str, dict[str, int]]:
        """A two-level view of a SEP-compound counter."""
        out: dict[str, dict[str, int]] = {}
        for key, n in self._acc[name].items():
            left, right = key.rsplit(SEP, 1)
            out.setdefault(left, {})[right] = n
        return out

    def _day_series(self, name: str, labels: tuple[str, ...]) -> dict[str, list[int]]:
        n_days = self.clock.n_days
        series = {label: [0] * n_days for label in labels}
        for key, n in self._acc[name].items():
            day, label = key.split(SEP)
            series[label][int(day)] = n
        return series

    # -- rankings (Tables 3-5) -------------------------------------------------

    def _rate_rows(self, volume, hard, soft, type_counts) -> list[BounceRateRow]:
        rows = []
        for key, n in volume.items():
            tc = type_counts.get(key)
            major = None
            share = 0.0
            if tc:
                major_value, count = min(tc.items(), key=lambda kv: (-kv[1], kv[0]))
                major = BounceType(major_value)
                share = count / sum(tc.values())
            rows.append(
                BounceRateRow(
                    key=key,
                    email_volume=n,
                    hard_fraction=hard.get(key, 0) / n,
                    soft_fraction=soft.get(key, 0) / n,
                    major_type=major,
                    major_type_share=share,
                )
            )
        rows.sort(key=lambda r: (-r.email_volume, r.key))
        return rows

    def table3(self, top: int = 10) -> list[BounceRateRow]:
        """Streaming twin of :func:`repro.analysis.rankings.table3_top_domains`."""
        a = self._acc
        rows = self._rate_rows(
            dict(a["rd_volume"].items()), a["rd_hard"], a["rd_soft"], self._split2("rd_type")
        )
        return rows[:top]

    def _rows_by_ip_group(self, key_of) -> list[BounceRateRow]:
        a = self._acc
        volume: dict[str, int] = {}
        hard: dict[str, int] = {}
        soft: dict[str, int] = {}
        types: dict[str, dict[str, int]] = {}
        ip_types = self._split2("ip_type")
        for ip, n in a["ip_volume"].items():
            group = key_of(ip)
            if group is None:
                continue
            volume[group] = volume.get(group, 0) + n
            hard[group] = hard.get(group, 0) + a["ip_hard"].get(ip)
            soft[group] = soft.get(group, 0) + a["ip_soft"].get(ip)
            for t, c in ip_types.get(ip, {}).items():
                bucket = types.setdefault(group, {})
                bucket[t] = bucket.get(t, 0) + c
        return self._rate_rows(volume, hard, soft, types)

    def table4(self, geo, top: int = 10) -> list[BounceRateRow]:
        """Streaming twin of :func:`repro.analysis.rankings.table4_top_ases`."""

        def as_of(ip: str) -> str | None:
            try:
                return geo.asn(ip).label
            except KeyError:
                return None

        return self._rows_by_ip_group(as_of)[:top]

    def table5(self, geo, min_emails: int = 50) -> list[CountryRow]:
        """Streaming twin of :func:`repro.analysis.rankings.table5_countries`."""

        def country_of(ip: str) -> str | None:
            try:
                return geo.country(ip)
            except KeyError:
                return None

        rows = self._rows_by_ip_group(country_of)
        return [
            CountryRow(
                country=r.key,
                email_volume=r.email_volume,
                hard_fraction=r.hard_fraction,
                soft_fraction=r.soft_fraction,
                major_type=r.major_type,
                major_type_share=r.major_type_share,
            )
            for r in rows
            if r.email_volume >= min_emails
        ]

    # -- detectors (Section 4.2.1 / 4.3.2) ------------------------------------

    def guessing_campaigns(
        self,
        min_distinct_nonexistent: int = 15,
        min_target_share: float = 0.6,
    ) -> list[GuessingCampaign]:
        """Streaming twin of :func:`repro.analysis.malicious.detect_guessing_campaigns`."""
        a = self._acc
        per_sender: dict[str, dict[str, set[str]]] = {}
        for pair, users in a["pair_t8_users"].items():
            sd, rd = pair.split(SEP)
            per_sender.setdefault(sd, {})[rd] = users
        campaigns: list[GuessingCampaign] = []
        for sender_domain, per_target in sorted(per_sender.items()):
            total = a["sd_volume"].get(sender_domain)
            for target, users in sorted(per_target.items()):
                if len(users) < min_distinct_nonexistent:
                    continue
                pair = f"{sender_domain}{SEP}{target}"
                if a["pair_traffic"].get(pair) / total < min_target_share:
                    continue
                campaign = GuessingCampaign(
                    sender_domain=sender_domain, target_domain=target
                )
                campaign.candidates |= users
                n_emails = a["pair_traffic"].get(pair)
                n_delivered = a["pair_delivered_n"].get(pair)
                hits = a["pair_hit_users"].get(pair)
                campaign.hits |= hits
                campaign.candidates |= hits
                campaign.n_emails = n_emails
                campaign.n_bounced = n_emails - n_delivered
                campaign.n_delivered_to_hits = n_delivered
                campaigns.append(campaign)
        return campaigns

    def bulk_spammers(
        self,
        breach,
        pwned_threshold: float = 0.8,
        min_recipients: int = 30,
        dnsbl=None,
        probe_time: float | None = None,
    ) -> list[BulkSpamReport]:
        """Streaming twin of :func:`repro.analysis.malicious.detect_bulk_spammers`."""
        a = self._acc
        reports: list[BulkSpamReport] = []
        for sender_domain, addresses in sorted(a["spam_recipients"].items()):
            if len(addresses) < min_recipients:
                continue
            fraction = breach.pwned_fraction(sorted(addresses))
            if fraction <= pwned_threshold:
                continue
            flagged = False
            if dnsbl is not None and probe_time is not None:
                flagged = dnsbl.is_domain_listed(sender_domain, probe_time)
            reports.append(
                BulkSpamReport(
                    sender_domain=sender_domain,
                    n_recipients=len(addresses),
                    pwned_fraction=fraction,
                    n_emails=a["sd_volume"].get(sender_domain),
                    n_hard=a["sd_hard"].get(sender_domain),
                    n_soft=a["sd_soft"].get(sender_domain),
                    spamhaus_flagged=flagged,
                )
            )
        reports.sort(key=lambda r: (-r.n_emails, r.sender_domain))
        return reports

    def _never_resolved(self) -> dict[str, int]:
        delivered = self._acc["delivered_domains"]
        return {
            rd: n for rd, n in self._acc["t2_dec"].items() if rd not in delivered
        }

    def domain_typos(
        self, resolver, probe_time: float, top_k: int = 100
    ) -> list[DomainTypoFinding]:
        """Streaming twin of :func:`repro.analysis.typos.detect_domain_typos`."""
        a = self._acc
        candidates: dict[str, tuple[str, object]] = {}
        for original, _ in a["rd_volume"].top(top_k):
            for cand in domain_typos(original):
                candidates.setdefault(cand.text, (original, cand.kind))
        findings: list[DomainTypoFinding] = []
        for domain, n_emails in sorted(self._never_resolved().items()):
            result = resolver.query(domain, RecordType.A, probe_time)
            if result.status is not ResolveStatus.NXDOMAIN:
                continue
            hit = candidates.get(domain)
            if hit is None:
                continue
            original, kind = hit
            findings.append(
                DomainTypoFinding(
                    typo_domain=domain,
                    original_domain=original,
                    kind=kind,
                    n_senders=a["rd_senders"].count(domain),
                    n_emails=n_emails,
                )
            )
        findings.sort(key=lambda f: (-f.n_emails, f.typo_domain))
        return findings

    def username_typos(
        self, similarity_threshold: float = 0.9
    ) -> list[UsernameTypoFinding]:
        """Streaming twin of :func:`repro.analysis.typos.detect_username_typos`."""
        a = self._acc
        findings: dict[str, UsernameTypoFinding] = {}
        for address, senders in a["t8_addr_senders"].items():
            try:
                bad_user, domain = split_address(address)
            except ValueError:
                continue
            for sender in sorted(senders):
                for candidate in sorted(
                    a["deliv_user_sets"].get(f"{sender}{SEP}{domain}")
                ):
                    if similarity_ratio(bad_user, candidate) <= similarity_threshold:
                        continue
                    kind = classify_typo(bad_user, candidate)
                    if kind is None:
                        continue
                    findings[address] = UsernameTypoFinding(
                        typo_address=address,
                        candidate_address=f"{candidate}@{domain}",
                        kind=kind,
                        n_senders=len(senders),
                        n_emails=a["t8_addr_counts"].get(address),
                    )
                    break
                if address in findings:
                    break
        out = list(findings.values())
        out.sort(key=lambda f: (-f.n_emails, f.typo_address))
        return out

    # -- root causes (Table 2) -------------------------------------------------

    def type_distribution(self) -> Counter:
        """Table 1 twin: counts per recovered type (Counter of BounceType)."""
        return Counter({BounceType(t): n for t, n in self._acc["types"].items()})

    def root_causes(self, breach, resolver, probe_time: float) -> RootCauseReport:
        """Streaming twin of :func:`repro.analysis.rootcause.attribute_root_causes`."""
        a = self._acc
        guess_keys = {
            (c.sender_domain, c.target_domain) for c in self.guessing_campaigns()
        }
        spam_senders = {r.sender_domain for r in self.bulk_spammers(breach)}
        typo_domain_names = {
            f.typo_domain for f in self.domain_typos(resolver, probe_time)
        }
        typo_addresses = {f.typo_address for f in self.username_typos()}

        counts: dict[str, int] = {}

        def bump(key: str, n: int) -> None:
            counts[key] = counts.get(key, 0) + n

        for compound, n in a["t8_dec"].items():
            sender_domain, receiver_domain, address, inactive = compound.split(SEP)
            if (sender_domain, receiver_domain) in guess_keys:
                bump("guess", n)
            elif sender_domain in spam_senders:
                bump("bulk_spam", n)
            elif address in typo_addresses:
                bump("username_typo", n)
            elif inactive == "1":
                bump("inactive", n)
            else:
                bump("unattributed_t8", n)
        for sender_domain, n in a["t13_dec"].items():
            bump("bulk_spam" if sender_domain in spam_senders else "spam_filter", n)
        for receiver_domain, n in a["t2_dec"].items():
            bump(
                "domain_typo" if receiver_domain in typo_domain_names else "mx_error",
                n,
            )
        types = a["types"]
        counts["blocklist"] = types.get("T5")
        counts["greylist"] = types.get("T6")
        counts["too_fast"] = types.get("T7")
        counts["too_much_email"] = types.get("T11")
        counts["auth_failure"] = types.get("T3")
        counts["starttls"] = types.get("T4")
        counts["mailbox_full"] = types.get("T9")
        counts["timeout"] = types.get("T14")

        c = counts.get
        rows = [
            RootCauseRow(RootCause.MALICIOUS_EMAIL_DELIVERY, "T8",
                         "Guess victim email addresses", c("guess", 0)),
            RootCauseRow(RootCause.MALICIOUS_EMAIL_DELIVERY, "T8/T13",
                         "Delivering large amounts of spam", c("bulk_spam", 0)),
            RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T5",
                         "Sender MTA listed in blocklists", c("blocklist", 0)),
            RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T6",
                         "Sender MTA blocked by greylisting", c("greylist", 0)),
            RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T7",
                         "Sender MTA delivers too fast", c("too_fast", 0)),
            RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T13",
                         "Email detected as spam", c("spam_filter", 0)),
            RootCauseRow(RootCause.SPAM_BLOCKING_POLICY, "T11",
                         "User gets too much email", c("too_much_email", 0)),
            RootCauseRow(RootCause.SERVER_MANAGER_MISCONFIGURATION, "T3",
                         "Sender authentication failure", c("auth_failure", 0)),
            RootCauseRow(RootCause.SERVER_MANAGER_MISCONFIGURATION, "T4",
                         "Server does not support STARTTLS", c("starttls", 0)),
            RootCauseRow(RootCause.SERVER_MANAGER_MISCONFIGURATION, "T2",
                         "Error MX record for receiver domain", c("mx_error", 0)),
            RootCauseRow(RootCause.IMPROPER_USER_OPERATION, "T2",
                         "Receiver domain name typo", c("domain_typo", 0)),
            RootCauseRow(RootCause.IMPROPER_USER_OPERATION, "T8",
                         "Receiver username typo", c("username_typo", 0)),
            RootCauseRow(RootCause.IMPROPER_USER_OPERATION, "T8",
                         "Receiver email address is inactive", c("inactive", 0)),
            RootCauseRow(RootCause.IMPROPER_USER_OPERATION, "T9",
                         "Receiver mailbox is full", c("mailbox_full", 0)),
            RootCauseRow(RootCause.POOR_EMAIL_INFRASTRUCTURE, "T14",
                         "SMTP session timeout", c("timeout", 0)),
        ]
        return RootCauseReport(
            n_classified=types.total,
            n_ambiguous=self._acc["totals"].get("ambiguous"),
            type_distribution=self.type_distribution(),
            rows=rows,
        )

    # -- misconfiguration durations (Fig 7) -----------------------------------

    def _duration_report(
        self, name: str, min_bounces: int, confirm_success: bool = False
    ) -> DurationReport:
        keyed = self._acc[name]
        clock = self.clock
        edge = 3 * DAY_SECONDS
        last_success = self._acc["last_success"]
        episodes: list[ErrorEpisode] = []
        for entity in keyed.entities():
            eps = keyed.episodes(entity)
            if sum(e[2] for e in eps) < min_bounces:
                continue
            for start, end, n in eps:
                if n < min_bounces:
                    continue
                censored = (
                    start - clock.start_ts < edge or clock.end_ts - end < edge
                )
                if confirm_success and not (
                    last_success.get(entity, float("-inf")) > end
                ):
                    censored = True
                episodes.append(
                    ErrorEpisode(
                        entity=entity, start=start, end=end,
                        n_bounces=n, censored=censored,
                    )
                )
        episodes.sort(key=lambda e: (e.entity, e.start, e.end))
        return DurationReport(episodes)

    def auth_durations(self, min_bounces: int = 2) -> DurationReport:
        """Twin of :func:`repro.analysis.misconfig.auth_error_durations` (gap 10 d)."""
        return self._duration_report("auth_eps", min_bounces)

    def mx_durations(self, min_bounces: int = 3) -> DurationReport:
        """Twin of :func:`repro.analysis.misconfig.mx_error_durations` (gap 4 d)."""
        return self._duration_report("mx_eps", min_bounces, confirm_success=True)

    def quota_durations(self, min_bounces: int = 2) -> DurationReport:
        """Twin of :func:`repro.analysis.misconfig.quota_error_durations` (gap 40 d)."""
        return self._duration_report("quota_eps", min_bounces)

    # -- blocklists and filters (Fig 6) ---------------------------------------

    def t5_daily_counts(self) -> tuple[list[int], list[int]]:
        """Twin of :func:`repro.analysis.blocklist.t5_daily_counts`."""
        series = self._day_series("t5_day", ("n", "s"))
        return series["n"], series["s"]

    def blocklist_recovery_rate(self) -> float:
        totals = self._acc["totals"]
        total = totals.get("t5")
        return totals.get("t5_recovered") / total if total else 0.0

    def greylisting_domains(self) -> set[str]:
        return self._acc["t6_domains"].as_set()

    def filter_divergence(self) -> FilterDivergence:
        totals = self._acc["totals"]
        return FilterDivergence(
            coremail_spam_receiver_accepts=totals.get("flag_spam_delivered"),
            coremail_spam_total=totals.get("flag_spam"),
            receiver_spam_coremail_normal=totals.get("t13_normal"),
            receiver_spam_total=self._acc["types"].get("T13"),
        )

    def dnsbl_adoption_counts(self) -> Counter:
        clock = self.clock
        return Counter(
            clock.month_key(t) for _, t in self._acc["t5_first_seen"].items()
        )

    # -- squatting (Section 5 / Fig 9) ----------------------------------------

    def squatting(self, world, probe_time: float | None = None) -> SquattingReport:
        """Streaming twin of :func:`repro.analysis.squatting.squatting_report`."""
        if probe_time is None:
            probe_time = world.clock.end_ts + 30 * 86_400
        return SquattingReport(
            domains=self._vulnerable_domains(world, probe_time),
            usernames=self._vulnerable_usernames(world, probe_time),
        )

    def _vulnerable_domains(self, world, probe_time: float) -> list[VulnerableDomain]:
        a = self._acc
        registrar = world.registrar
        received_ok = a["delivered_domains"]
        out: list[VulnerableDomain] = []
        recheck_time = probe_time + 120 * 86_400
        for domain, n_emails in sorted(a["t2_dec"].items()):
            if not registrar.available_for_registration(domain, probe_time):
                continue
            vd = VulnerableDomain(
                domain=domain,
                n_senders=a["t2_senders"].count(domain),
                n_emails=n_emails,
                historically_received=domain in received_ok,
            )
            whois_after = registrar.whois(domain, recheck_time)
            if whois_after.registered:
                vd.reregistered = True
                vd.registrant_changed = registrar.registrant_changed(
                    domain, world.clock.start_ts, recheck_time
                )
                vd.serves_mail = registrar.serves_mail(domain, recheck_time)
            out.append(vd)
        out.sort(key=lambda d: (-d.n_emails, d.domain))
        return out

    def _vulnerable_usernames(
        self, world, probe_time: float, min_incoming: int = 3
    ) -> list[VulnerableUsername]:
        a = self._acc
        delivered_ever = a["delivered_addrs"]
        out: list[VulnerableUsername] = []
        for address, count in sorted(a["prov_t8_counts"].items()):
            if count < min_incoming:
                continue
            username, provider = address.split("@", 1)
            rdomain = world.receiver_domains.get(provider)
            if rdomain is None:
                continue
            box = rdomain.mailbox(username)
            if box is not None:
                registrable = box.registrable_at(probe_time)
                websites = box.website_accounts if registrable else ()
                history = address in delivered_ever
            else:
                registrable = True
                websites = ()
                history = False
            if not registrable:
                continue
            out.append(
                VulnerableUsername(
                    address=address,
                    provider=provider,
                    n_senders=a["prov_t8_senders"].count(address),
                    n_emails=count,
                    historically_received=history,
                    website_accounts=websites,
                )
            )
        out.sort(key=lambda u: (-u.n_emails, u.address))
        return out

    def weekly_vulnerable(self, report: SquattingReport) -> WeeklySeries:
        """Streaming twin of :func:`repro.analysis.squatting.weekly_vulnerable_series`."""
        a = self._acc
        vulnerable_domains = {d.domain for d in report.domains}
        vulnerable_addresses = {u.address for u in report.usernames}
        n_weeks = self.clock.n_weeks
        senders_per_week: list[set[str]] = [set() for _ in range(n_weeks)]
        emails_per_week = [0] * n_weeks

        for key, n in a["week_dom_n"].items():
            domain, week = key.split(SEP)
            week = int(week)
            if domain in vulnerable_domains and 0 <= week < n_weeks:
                emails_per_week[week] += n
        # Records counted under a vulnerable *domain* above must not be
        # double-counted when their address is vulnerable too, hence the
        # receiver-domain component in the week_addr_n key.
        for key, n in a["week_addr_n"].items():
            address, week, receiver_domain = key.split(SEP)
            week = int(week)
            if (
                address in vulnerable_addresses
                and receiver_domain not in vulnerable_domains
                and 0 <= week < n_weeks
            ):
                emails_per_week[week] += n

        for key, senders in a["week_dom_senders"].items():
            domain, week = key.rsplit(SEP, 1)
            week = int(week)
            if domain in vulnerable_domains and 0 <= week < n_weeks:
                senders_per_week[week] |= senders
        for key, senders in a["week_addr_senders"].items():
            address, week = key.rsplit(SEP, 1)
            week = int(week)
            if address in vulnerable_addresses and 0 <= week < n_weeks:
                senders_per_week[week] |= senders

        return WeeklySeries(
            weeks=list(range(n_weeks)),
            senders=[len(s) for s in senders_per_week],
            emails=emails_per_week,
        )

    def persistently_vulnerable_fraction(
        self, names: set[str], min_weeks: int = 36, by_domain: bool = True
    ) -> float:
        """Twin of :func:`repro.analysis.squatting.persistently_vulnerable_fraction`."""
        if not names:
            return 0.0
        weeks_seen: dict[str, set[int]] = {}
        if by_domain:
            for key in self._acc["week_dom_n"].keys():
                domain, week = key.split(SEP)
                if domain in names:
                    weeks_seen.setdefault(domain, set()).add(int(week))
        else:
            for key in self._acc["week_addr_n"].keys():
                address, week, _rd = key.split(SEP)
                if address in names:
                    weeks_seen.setdefault(address, set()).add(int(week))
        return (
            sum(1 for n in names if len(weeks_seen.get(n, ())) >= min_weeks)
            / len(names)
        )

    # -- the records-only payload ---------------------------------------------

    def tables(self, top: int = 10) -> dict:
        """The full records-only table payload (JSON-ready).

        Every value is computed from accumulator state alone, and every
        float is invariant under stream partitioning — this is the
        payload `repro report` renders and byte-diffs against
        :func:`repro.analytics.batch.batch_tables`.
        """
        a = self._acc
        totals = a["totals"]
        n_emails = totals.get("emails")
        recovery = a["recovery_hours"]
        rec_sketch = a["recovery_sketch"]
        grey = a["greylist_delay_s"]
        grey_sketch = a["greylist_sketch"]
        daily = self._day_series("day_degree", ("non", "soft", "hard"))
        blocked_normal, blocked_spam = self.t5_daily_counts()
        divergence = self.filter_divergence()

        return {
            "version": SUITE_SNAPSHOT_VERSION,
            "n_records": self.n_records,
            "overview": {
                "n_emails": n_emails,
                "n_non": totals.get("non"),
                "n_soft": totals.get("soft"),
                "n_hard": totals.get("hard"),
                "mean_attempts_soft": a["soft_attempts"].mean,
                "recovery": {
                    "n": recovery.n,
                    "mean_h": recovery.mean,
                    "p50_h": rec_sketch.quantile(0.5),
                    "p90_h": rec_sketch.quantile(0.9),
                },
            },
            "types": {
                "rows": [[t, n] for t, n in a["types"].top()],
                "n_classified": a["types"].total,
                "n_ambiguous": totals.get("ambiguous"),
                "n_bounced": totals.get("bounced"),
            },
            "volume": {
                "monthly": [
                    [k, a["monthly"].get(k)] for k in self.clock.month_keys()
                ],
                "daily": daily,
            },
            "top_domains": [
                [
                    r.key,
                    r.email_volume,
                    r.hard_fraction,
                    r.soft_fraction,
                    r.major_type.value if r.major_type else "",
                    r.major_type_share,
                ]
                for r in self.table3(top)
            ],
            "blocklist": {
                "blocked_normal": sum(blocked_normal),
                "blocked_spam": sum(blocked_spam),
                "blocked_normal_per_day": blocked_normal,
                "blocked_spam_per_day": blocked_spam,
                "recovery_rate": self.blocklist_recovery_rate(),
                "n_greylist_domains": len(a["t6_domains"]),
                "greylist_delay": {
                    "n": grey.n,
                    "mean_s": grey.mean,
                    "p50_s": grey_sketch.quantile(0.5),
                    "p95_s": grey_sketch.quantile(0.95),
                },
                "divergence": {
                    "spam_total": divergence.coremail_spam_total,
                    "spam_accepted": divergence.coremail_spam_receiver_accepts,
                    "t13_total": divergence.receiver_spam_total,
                    "t13_normal": divergence.receiver_spam_coremail_normal,
                },
                "adoption": sorted(
                    [k, v] for k, v in self.dnsbl_adoption_counts().items()
                ),
            },
            "misconfig": {
                "auth": episode_stats(self.auth_durations().episodes),
                "mx": episode_stats(self.mx_durations().episodes),
                "quota": episode_stats(self.quota_durations().episodes),
            },
            "squatting_inputs": {
                "n_failed_domains": len(a["t2_dec"]),
                "n_failed_domain_emails": a["t2_dec"].total,
                "n_provider_t8_addresses": len(a["prov_t8_counts"]),
                "n_provider_t8_emails": a["prov_t8_counts"].total,
                "n_delivered_domains": len(a["delivered_domains"]),
                "n_delivered_addresses": len(a["delivered_addrs"]),
            },
        }

    def live_payload(self, top: int = 10) -> dict:
        """The serve-side live view: the exact table payload plus the
        approximate heavy-hitter lists (clearly marked, never byte-diffed)."""
        payload = self.tables(top)
        payload["heavy_hitters"] = {
            "senders": {
                "exact": self._acc["top_senders"].exact,
                "top": [list(row) for row in self._acc["top_senders"].top(top)],
            },
            "receivers": {
                "exact": self._acc["top_receivers"].exact,
                "top": [list(row) for row in self._acc["top_receivers"].top(top)],
            },
        }
        return payload

    # -- sketch gauges for /metrics -------------------------------------------

    def sketch_gauges(self) -> dict[str, dict[str, float]]:
        """Quantile gauges for the Prometheus surface."""
        return {
            "repro_report_recovery_hours": self._acc["recovery_sketch"].quantiles(),
            "repro_report_greylist_delay_seconds": self._acc["greylist_sketch"].quantiles(),
        }
