"""NDJSON record decoding for the report pipeline.

`repro report -` and `repro classify -` share one idea: records arrive
as newline-delimited JSON on stdin.  This module is the report side's
decode path — it names the offending *source and line* on malformed
input instead of dumping a bare traceback.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from repro.delivery.records import DeliveryRecord


class RecordDecodeError(ValueError):
    """A line of the input stream could not be decoded into a record."""

    def __init__(self, source: str, line_no: int, reason: str) -> None:
        self.source = source
        self.line_no = line_no
        self.reason = reason
        super().__init__(f"{source}: line {line_no}: {reason}")


def iter_ndjson_records(
    lines: Iterable[str], source: str = "<stdin>"
) -> Iterator[DeliveryRecord]:
    """Decode NDJSON lines into records, skipping blank lines.

    Raises :class:`RecordDecodeError` naming ``source`` and the 1-based
    line number on the first malformed line.
    """
    for line_no, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RecordDecodeError(source, line_no, f"invalid JSON ({exc.msg})") from exc
        if not isinstance(data, dict):
            raise RecordDecodeError(
                source, line_no, f"expected a JSON object, got {type(data).__name__}"
            )
        try:
            yield DeliveryRecord.from_json_dict(data)
        except (KeyError, TypeError, ValueError, IndexError) as exc:
            raise RecordDecodeError(
                source, line_no, f"not a delivery record ({exc.__class__.__name__}: {exc})"
            ) from exc
