"""Mergeable streaming analytics: the paper's tables over unbounded corpora.

The subsystem has three layers:

* :mod:`repro.analytics.accumulators` — the algebra: small, serializable
  accumulators (counters, distinct sets, top-K trackers, quantile
  sketches, gap-merged episode trackers) whose ``merge`` is commutative
  and associative and whose ``snapshot``/``restore`` round-trips are
  versioned, mirroring the :meth:`repro.obs.metrics.MetricsRegistry.merge`
  contract.
* :mod:`repro.analytics.suite` — :class:`TableSuite`, one ``observe``
  per :class:`~repro.delivery.records.DeliveryRecord` feeding every
  accumulator the paper's tables need; each table/figure computation in
  :mod:`repro.analysis` has a streaming twin here asserted equal to the
  batch implementation.
* :mod:`repro.analytics.render` / :mod:`repro.analytics.batch` — the
  shared deterministic renderer and the materialized batch twin, so the
  streaming and batch paths emit byte-identical reports.

See docs/ANALYTICS.md for the accumulator contract and error bounds.
"""

from repro.analytics.accumulators import (
    DistinctSet,
    KeyedDistinct,
    KeyedEpisodes,
    KeyedMax,
    KeyedMin,
    LabeledCounter,
    QuantileSketch,
    ScalarStat,
    SnapshotError,
    TopK,
    restore,
)
from repro.analytics.io import RecordDecodeError, iter_ndjson_records
from repro.analytics.suite import SUITE_SNAPSHOT_VERSION, TableSuite

__all__ = [
    "DistinctSet",
    "KeyedDistinct",
    "KeyedEpisodes",
    "KeyedMax",
    "KeyedMin",
    "LabeledCounter",
    "QuantileSketch",
    "RecordDecodeError",
    "SUITE_SNAPSHOT_VERSION",
    "ScalarStat",
    "SnapshotError",
    "TableSuite",
    "TopK",
    "iter_ndjson_records",
    "restore",
]
