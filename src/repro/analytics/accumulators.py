"""The streaming-aggregation algebra: mergeable, serializable accumulators.

Every accumulator obeys the same contract, mirroring
:meth:`repro.obs.metrics.MetricsRegistry.merge`:

* ``observe(...)`` folds one observation in (O(1) or O(log n));
* ``merge(other)`` folds another accumulator of the same kind and
  layout in — **commutative and associative**, so per-worker partials
  combine to the same state in any grouping, and split-stream
  merge equals single-stream observe;
* ``snapshot()`` returns a JSON-ready dict carrying ``kind`` and a
  version ``v``; the module-level :func:`restore` rebuilds the
  accumulator from it, accepting any version up to the current one.

Exact arithmetic where determinism demands it: sums of float
observations are kept as :class:`fractions.Fraction` (binary floats are
exact rationals), so a merged sum is bit-identical no matter how the
stream was partitioned — float addition is not associative, fraction
addition is.

Approximate structures are deterministic too: the quantile sketch uses
the same log-bucket layout as :class:`repro.obs.metrics.Histogram`
(observation-order independent by construction), and the top-K tracker
breaks every tie lexicographically.  See docs/ANALYTICS.md for error
bounds.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from fractions import Fraction
from typing import Iterable, Iterator

__all__ = [
    "DistinctSet",
    "KeyedDistinct",
    "KeyedEpisodes",
    "KeyedMax",
    "KeyedMin",
    "LabeledCounter",
    "QuantileSketch",
    "ScalarStat",
    "SnapshotError",
    "TopK",
    "restore",
]


class SnapshotError(ValueError):
    """A snapshot cannot be restored (unknown kind, future or malformed
    version, or layout mismatch)."""


_REGISTRY: dict[str, type] = {}


def _register(cls):
    _REGISTRY[cls.kind] = cls
    return cls


def restore(snapshot: dict):
    """Rebuild any accumulator from its :meth:`snapshot` payload."""
    if not isinstance(snapshot, dict):
        raise SnapshotError(f"snapshot must be a dict, got {type(snapshot).__name__}")
    kind = snapshot.get("kind")
    cls = _REGISTRY.get(kind)
    if cls is None:
        raise SnapshotError(f"unknown accumulator kind {kind!r}")
    version = snapshot.get("v")
    if not isinstance(version, int) or not 1 <= version <= cls.SNAPSHOT_VERSION:
        raise SnapshotError(
            f"{kind}: cannot restore snapshot version {version!r} "
            f"(this build reads versions 1..{cls.SNAPSHOT_VERSION})"
        )
    return cls.from_snapshot(snapshot)


def _frac_to_json(value: Fraction) -> list[int]:
    return [value.numerator, value.denominator]


def _frac_from_json(value) -> Fraction:
    return Fraction(int(value[0]), int(value[1]))


class Accumulator:
    """Base contract; subclasses define ``observe`` with their own shape."""

    kind = "abstract"
    SNAPSHOT_VERSION = 1

    def merge(self, other: "Accumulator") -> "Accumulator":
        raise NotImplementedError

    def snapshot(self) -> dict:
        raise NotImplementedError

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "Accumulator":
        raise NotImplementedError

    def merge_snapshot(self, snapshot: dict) -> "Accumulator":
        """Restore-and-merge in one step (the worker-partial fold)."""
        return self.merge(restore(snapshot))

    def _check(self, other: "Accumulator") -> None:
        if type(other) is not type(self):
            raise SnapshotError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )


@_register
class ScalarStat(Accumulator):
    """Count / exact sum / min / max of a value stream.

    The sum is a :class:`Fraction`, so ``mean`` is bit-identical across
    any partitioning of the stream.
    """

    kind = "scalar_stat"
    SNAPSHOT_VERSION = 1

    __slots__ = ("_n", "_sum", "_min", "_max")

    def __init__(self) -> None:
        self._n = 0
        self._sum = Fraction(0)
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        self._n += 1
        self._sum += Fraction(value)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value

    @property
    def n(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return float(self._sum)

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    @property
    def mean(self) -> float:
        return float(self._sum / self._n) if self._n else 0.0

    def merge(self, other: "ScalarStat") -> "ScalarStat":
        self._check(other)
        self._n += other._n
        self._sum += other._sum
        for bound in (other._min,):
            if bound is not None and (self._min is None or bound < self._min):
                self._min = bound
        for bound in (other._max,):
            if bound is not None and (self._max is None or bound > self._max):
                self._max = bound
        return self

    def snapshot(self) -> dict:
        return {
            "kind": self.kind, "v": 1, "n": self._n,
            "sum": _frac_to_json(self._sum),
            "min": self._min, "max": self._max,
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "ScalarStat":
        out = cls()
        out._n = int(snapshot["n"])
        out._sum = _frac_from_json(snapshot["sum"])
        out._min = snapshot.get("min")
        out._max = snapshot.get("max")
        return out


@_register
class LabeledCounter(Accumulator):
    """Integer counts per string key (sparse, exact, mergeable by
    addition).  The workhorse: every exact table reduces to one or more
    of these."""

    kind = "labeled_counter"
    #: v2 added the redundant ``total`` field (validated on restore);
    #: v1 snapshots without it are still accepted.
    SNAPSHOT_VERSION = 2

    __slots__ = ("_counts",)

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}

    def observe(self, key: str, n: int = 1) -> None:
        self._counts[key] = self._counts.get(key, 0) + n

    def get(self, key: str, default: int = 0) -> int:
        return self._counts.get(key, default)

    def __len__(self) -> int:
        return len(self._counts)

    def __contains__(self, key: str) -> bool:
        return key in self._counts

    def items(self) -> Iterator[tuple[str, int]]:
        return iter(self._counts.items())

    def keys(self):
        return self._counts.keys()

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    def top(self, n: int | None = None) -> list[tuple[str, int]]:
        """Keys by descending count, ties broken lexicographically —
        the deterministic replacement for ``Counter.most_common``."""
        ranked = sorted(self._counts.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked if n is None else ranked[:n]

    def merge(self, other: "LabeledCounter") -> "LabeledCounter":
        self._check(other)
        counts = self._counts
        for key, n in other._counts.items():
            counts[key] = counts.get(key, 0) + n
        return self

    def snapshot(self) -> dict:
        return {"kind": self.kind, "v": 2, "counts": dict(self._counts),
                "total": self.total}

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "LabeledCounter":
        out = cls()
        out._counts = {str(k): int(n) for k, n in snapshot["counts"].items()}
        if snapshot["v"] >= 2 and int(snapshot["total"]) != out.total:
            raise SnapshotError(
                f"labeled_counter: total {snapshot['total']} does not match "
                f"the per-key counts (sum {out.total}) — corrupt snapshot"
            )
        return out


@_register
class DistinctSet(Accumulator):
    """Exact distinct-string tracker (merge = union)."""

    kind = "distinct_set"
    SNAPSHOT_VERSION = 1

    __slots__ = ("_items",)

    def __init__(self) -> None:
        self._items: set[str] = set()

    def observe(self, item: str) -> None:
        self._items.add(item)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: str) -> bool:
        return item in self._items

    def as_set(self) -> set[str]:
        return set(self._items)

    def merge(self, other: "DistinctSet") -> "DistinctSet":
        self._check(other)
        self._items |= other._items
        return self

    def snapshot(self) -> dict:
        return {"kind": self.kind, "v": 1, "items": sorted(self._items)}

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "DistinctSet":
        out = cls()
        out._items = {str(i) for i in snapshot["items"]}
        return out


@_register
class KeyedDistinct(Accumulator):
    """A distinct-string set per key (merge = per-key union)."""

    kind = "keyed_distinct"
    SNAPSHOT_VERSION = 1

    __slots__ = ("_sets",)

    def __init__(self) -> None:
        self._sets: dict[str, set[str]] = {}

    def observe(self, key: str, item: str) -> None:
        existing = self._sets.get(key)
        if existing is None:
            self._sets[key] = {item}
        else:
            existing.add(item)

    def get(self, key: str) -> set[str]:
        return self._sets.get(key, set())

    def count(self, key: str) -> int:
        existing = self._sets.get(key)
        return len(existing) if existing is not None else 0

    def keys(self):
        return self._sets.keys()

    def items(self) -> Iterator[tuple[str, set[str]]]:
        return iter(self._sets.items())

    def __len__(self) -> int:
        return len(self._sets)

    def merge(self, other: "KeyedDistinct") -> "KeyedDistinct":
        self._check(other)
        sets = self._sets
        for key, items in other._sets.items():
            existing = sets.get(key)
            if existing is None:
                sets[key] = set(items)
            else:
                existing |= items
        return self

    def snapshot(self) -> dict:
        return {
            "kind": self.kind, "v": 1,
            "sets": {k: sorted(v) for k, v in self._sets.items()},
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "KeyedDistinct":
        out = cls()
        out._sets = {str(k): {str(i) for i in v}
                     for k, v in snapshot["sets"].items()}
        return out


class _KeyedExtreme(Accumulator):
    """Shared base of :class:`KeyedMin`/:class:`KeyedMax`."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values: dict[str, float] = {}

    def _better(self, a: float, b: float) -> bool:
        raise NotImplementedError

    def observe(self, key: str, value: float) -> None:
        current = self._values.get(key)
        if current is None or self._better(value, current):
            self._values[key] = value

    def get(self, key: str, default: float | None = None) -> float | None:
        return self._values.get(key, default)

    def keys(self):
        return self._values.keys()

    def items(self) -> Iterator[tuple[str, float]]:
        return iter(self._values.items())

    def __len__(self) -> int:
        return len(self._values)

    def merge(self, other: "_KeyedExtreme") -> "_KeyedExtreme":
        self._check(other)
        for key, value in other._values.items():
            self.observe(key, value)
        return self

    def snapshot(self) -> dict:
        return {"kind": self.kind, "v": 1, "values": dict(self._values)}

    @classmethod
    def from_snapshot(cls, snapshot: dict):
        out = cls()
        out._values = {str(k): float(v) for k, v in snapshot["values"].items()}
        return out


@_register
class KeyedMin(_KeyedExtreme):
    kind = "keyed_min"
    SNAPSHOT_VERSION = 1

    def _better(self, a: float, b: float) -> bool:
        return a < b


@_register
class KeyedMax(_KeyedExtreme):
    kind = "keyed_max"
    SNAPSHOT_VERSION = 1

    def _better(self, a: float, b: float) -> bool:
        return a > b


@_register
class TopK(Accumulator):
    """SpaceSaving heavy-hitter tracker with ``capacity`` slots.

    Counts are exact (``error == 0`` for every key and :attr:`exact` is
    True) until the distinct-key population exceeds ``capacity``; past
    that, each reported count overestimates the true count by at most
    its recorded ``error``.  Eviction and ranking tie-breaks are
    lexicographic, so the structure is a pure function of its inputs —
    but *which* keys survive still depends on how the stream was split,
    which is why exact :class:`LabeledCounter` (not TopK) backs the
    byte-diffed report tables.
    """

    kind = "topk"
    SNAPSHOT_VERSION = 1

    __slots__ = ("capacity", "_counts", "_evicted")

    def __init__(self, capacity: int = 50) -> None:
        if capacity < 1:
            raise ValueError("TopK capacity must be >= 1")
        self.capacity = capacity
        #: key -> [count, error]
        self._counts: dict[str, list[int]] = {}
        self._evicted = False

    @property
    def exact(self) -> bool:
        return not self._evicted

    def _floor(self) -> int:
        """The count any untracked key may have reached (0 while exact)."""
        if not self._evicted:
            return 0
        return min(entry[0] for entry in self._counts.values())

    def observe(self, key: str, n: int = 1) -> None:
        entry = self._counts.get(key)
        if entry is not None:
            entry[0] += n
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = [n, 0]
            return
        victim = min(self._counts.items(), key=lambda kv: (kv[1][0], kv[0]))
        floor = victim[1][0]
        del self._counts[victim[0]]
        self._counts[key] = [floor + n, floor]
        self._evicted = True

    def merge(self, other: "TopK") -> "TopK":
        self._check(other)
        if other.capacity != self.capacity:
            raise SnapshotError(
                f"topk: capacity mismatch ({self.capacity} vs {other.capacity})"
            )
        mine, theirs = self._counts, other._counts
        my_floor, their_floor = self._floor(), other._floor()
        combined: dict[str, list[int]] = {}
        for key in set(mine) | set(theirs):
            a = mine.get(key)
            b = theirs.get(key)
            count = (a[0] if a else my_floor) + (b[0] if b else their_floor)
            error = (a[1] if a else my_floor) + (b[1] if b else their_floor)
            combined[key] = [count, error]
        self._evicted = self._evicted or other._evicted
        if len(combined) > self.capacity:
            keep = sorted(combined.items(), key=lambda kv: (-kv[1][0], kv[0]))
            combined = dict(keep[: self.capacity])
            self._evicted = True
        self._counts = combined
        return self

    def top(self, n: int | None = None) -> list[tuple[str, int, int]]:
        """``(key, count, error)`` by descending count, key-tiebroken."""
        ranked = sorted(
            ((k, entry[0], entry[1]) for k, entry in self._counts.items()),
            key=lambda row: (-row[1], row[0]),
        )
        return ranked if n is None else ranked[:n]

    def snapshot(self) -> dict:
        return {
            "kind": self.kind, "v": 1, "capacity": self.capacity,
            "evicted": self._evicted,
            "counts": {k: list(entry) for k, entry in self._counts.items()},
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "TopK":
        out = cls(capacity=int(snapshot["capacity"]))
        out._counts = {
            str(k): [int(entry[0]), int(entry[1])]
            for k, entry in snapshot["counts"].items()
        }
        out._evicted = bool(snapshot["evicted"])
        return out


@_register
class QuantileSketch(Accumulator):
    """Log-bucketed quantile sketch for duration CDFs.

    Same bucket layout as :class:`repro.obs.metrics.Histogram`: bucket
    ``i`` covers ``(min_bound * base**(i-1), min_bound * base**i]`` and
    bucket 0 covers ``(-inf, min_bound]``.  Bucket counts are a pure
    function of the observed multiset, so snapshots, merges, and
    quantile estimates are deterministic under any stream partitioning.
    A quantile estimate is the upper bound of the bucket holding the
    target rank (clamped to the exact observed min/max), so it
    overestimates the true quantile by at most a factor of ``base``
    (relative error ``base - 1``).  The count is exact; the sum is an
    exact :class:`Fraction`.

    v2 snapshots carry the sum as an exact fraction; v1 snapshots (float
    sum) restore with the float coerced — accepted for compatibility,
    exactness resumes from the restored value.
    """

    kind = "quantile_sketch"
    SNAPSHOT_VERSION = 2

    #: base = 2**(1/8): at most ~9.05% relative overestimate per quantile.
    DEFAULT_BASE = 2.0 ** 0.125

    __slots__ = ("base", "min_bound", "_log_base", "_counts", "_n", "_sum",
                 "_min", "_max")

    def __init__(self, base: float = DEFAULT_BASE, min_bound: float = 0.001) -> None:
        if base <= 1.0:
            raise ValueError("sketch base must be > 1")
        if min_bound <= 0:
            raise ValueError("sketch min_bound must be positive")
        self.base = base
        self.min_bound = min_bound
        self._log_base = math.log(base)
        self._counts: dict[int, int] = {}
        self._n = 0
        self._sum = Fraction(0)
        self._min: float | None = None
        self._max: float | None = None

    def observe(self, value: float) -> None:
        self._n += 1
        self._sum += Fraction(value)
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if value <= self.min_bound:
            index = 0
        else:
            index = int(math.ceil(
                math.log(value / self.min_bound) / self._log_base - 1e-12
            ))
        self._counts[index] = self._counts.get(index, 0) + 1

    @property
    def n(self) -> int:
        return self._n

    @property
    def sum(self) -> float:
        return float(self._sum)

    @property
    def min(self) -> float | None:
        return self._min

    @property
    def max(self) -> float | None:
        return self._max

    @property
    def mean(self) -> float:
        return float(self._sum / self._n) if self._n else 0.0

    def bound(self, index: int) -> float:
        return self.min_bound * self.base ** index

    def quantile(self, p: float) -> float:
        """Deterministic estimate of the ``p``-quantile (0 when empty)."""
        if self._n == 0:
            return 0.0
        p = min(max(p, 0.0), 1.0)
        rank = max(1, math.ceil(p * self._n))
        running = 0
        for index in sorted(self._counts):
            running += self._counts[index]
            if running >= rank:
                estimate = self.bound(index)
                if self._max is not None:
                    estimate = min(estimate, self._max)
                if self._min is not None:
                    estimate = max(estimate, self._min)
                return estimate
        return self._max if self._max is not None else 0.0

    def quantiles(self, ps: Iterable[float] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        return {f"p{100 * p:g}": self.quantile(p) for p in ps}

    def cdf(self, grid: Iterable[float]) -> list[float]:
        """Fraction of observations with bucket bound <= each grid point
        (a deterministic underestimate by at most one bucket)."""
        if self._n == 0:
            return [0.0 for _ in grid]
        pairs = sorted(self._counts.items())
        out = []
        for g in grid:
            if self._max is not None and g >= self._max:
                out.append(1.0)
                continue
            covered = 0
            for index, count in pairs:
                if self.bound(index) <= g:
                    covered += count
                else:
                    break
            out.append(covered / self._n)
        return out

    def merge(self, other: "QuantileSketch") -> "QuantileSketch":
        self._check(other)
        if other.base != self.base or other.min_bound != self.min_bound:
            raise SnapshotError(
                f"quantile_sketch: bucket layout mismatch (base {self.base} "
                f"vs {other.base}, min_bound {self.min_bound} vs {other.min_bound})"
            )
        counts = self._counts
        for index, count in other._counts.items():
            counts[index] = counts.get(index, 0) + count
        self._n += other._n
        self._sum += other._sum
        if other._min is not None and (self._min is None or other._min < self._min):
            self._min = other._min
        if other._max is not None and (self._max is None or other._max > self._max):
            self._max = other._max
        return self

    def snapshot(self) -> dict:
        return {
            "kind": self.kind, "v": 2,
            "base": self.base, "min_bound": self.min_bound,
            "n": self._n, "sum": _frac_to_json(self._sum),
            "min": self._min, "max": self._max,
            "counts": {str(i): c for i, c in self._counts.items()},
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "QuantileSketch":
        out = cls(base=float(snapshot["base"]),
                  min_bound=float(snapshot["min_bound"]))
        out._n = int(snapshot["n"])
        raw_sum = snapshot["sum"]
        out._sum = (Fraction(float(raw_sum)) if snapshot["v"] < 2
                    else _frac_from_json(raw_sum))
        out._min = snapshot.get("min")
        out._max = snapshot.get("max")
        out._counts = {int(i): int(c) for i, c in snapshot["counts"].items()}
        return out


@_register
class KeyedEpisodes(Accumulator):
    """Gap-merged point episodes per entity — the streaming form of
    :func:`repro.analysis.misconfig._episodes_from_times`.

    Observing ``(entity, t)`` inserts the point interval ``[t, t]``;
    intervals closer than ``gap`` coalesce (summing their point counts).
    Because the batch estimator's episodes are exactly the equivalence
    classes of the "within gap" relation's transitive closure over the
    entity's time points, and interval coalescing computes that same
    closure incrementally, the finalized episodes are **identical to the
    batch split for any observation or merge order** — counts included.
    The invariant maintained everywhere: consecutive stored intervals
    satisfy ``next.start - prev.end > gap`` (the batch split is strict).
    """

    kind = "keyed_episodes"
    SNAPSHOT_VERSION = 1

    __slots__ = ("gap", "_episodes")

    def __init__(self, gap: float) -> None:
        if gap < 0:
            raise ValueError("episode gap must be >= 0")
        self.gap = gap
        #: entity -> [[start, end, n_points], ...] sorted by start,
        #: pairwise separated by more than ``gap``.
        self._episodes: dict[str, list[list]] = {}

    def observe(self, key: str, t: float, n: int = 1) -> None:
        self._insert(key, t, t, n)

    def _insert(self, key: str, start: float, end: float, count: int) -> None:
        episodes = self._episodes.get(key)
        if episodes is None:
            self._episodes[key] = [[start, end, count]]
            return
        i = bisect_right(episodes, start, key=lambda ep: ep[0])
        episodes.insert(i, [start, end, count])
        while i > 0 and episodes[i][0] - episodes[i - 1][1] <= self.gap:
            left, right = episodes[i - 1], episodes[i]
            episodes[i - 1] = [
                left[0], max(left[1], right[1]), left[2] + right[2]
            ]
            del episodes[i]
            i -= 1
        while i + 1 < len(episodes) and episodes[i + 1][0] - episodes[i][1] <= self.gap:
            cur, nxt = episodes[i], episodes[i + 1]
            episodes[i] = [cur[0], max(cur[1], nxt[1]), cur[2] + nxt[2]]
            del episodes[i + 1]

    def entities(self):
        return self._episodes.keys()

    def episodes(self, key: str) -> list[tuple[float, float, int]]:
        return [tuple(ep) for ep in self._episodes.get(key, [])]

    def total(self, key: str) -> int:
        return sum(ep[2] for ep in self._episodes.get(key, []))

    def __len__(self) -> int:
        return len(self._episodes)

    def merge(self, other: "KeyedEpisodes") -> "KeyedEpisodes":
        self._check(other)
        if other.gap != self.gap:
            raise SnapshotError(
                f"keyed_episodes: gap mismatch ({self.gap} vs {other.gap})"
            )
        for key, episodes in other._episodes.items():
            for start, end, count in episodes:
                self._insert(key, start, end, count)
        return self

    def snapshot(self) -> dict:
        return {
            "kind": self.kind, "v": 1, "gap": self.gap,
            "episodes": {k: [list(ep) for ep in v]
                         for k, v in self._episodes.items()},
        }

    @classmethod
    def from_snapshot(cls, snapshot: dict) -> "KeyedEpisodes":
        out = cls(gap=float(snapshot["gap"]))
        out._episodes = {
            str(k): sorted(
                ([float(ep[0]), float(ep[1]), int(ep[2])] for ep in v),
                key=lambda ep: ep[0],
            )
            for k, v in snapshot["episodes"].items()
        }
        return out
