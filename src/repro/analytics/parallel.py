"""Parallel reduction of sharded delivery logs into one TableSuite.

``suite_from_shards`` is the engine behind `repro report --shards`: it
streams every shard of every directory through a :class:`TableSuite`
without materializing the corpus.  With ``workers > 1`` the shard files
are dealt round-robin to worker processes; each worker folds its share
into a private suite, snapshots it to disk, and the parent merges the
partials in worker-index order — the same shape as a
:mod:`repro.parallel` run merging telemetry snapshots.  Merge is
commutative and associative, so the result is identical for any worker
count.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import tempfile
from pathlib import Path
from typing import Iterable, Sequence

from repro.analytics.suite import TableSuite, clock_from_ts
from repro.stream.sink import ShardReader
from repro.util.clock import SimClock


def shard_units(directories: Sequence[str | Path]) -> list[tuple[str, str]]:
    """All ``(directory, shard_name)`` pairs, in manifest order."""
    units: list[tuple[str, str]] = []
    for directory in directories:
        reader = ShardReader(directory)
        for info in reader.manifest.shards:
            units.append((str(directory), info.name))
    return units


def _observe_units(
    suite: TableSuite, units: Iterable[tuple[str, str]]
) -> None:
    readers: dict[str, ShardReader] = {}
    for directory, shard_name in units:
        reader = readers.get(directory)
        if reader is None:
            reader = readers[directory] = ShardReader(directory)
        info = next(s for s in reader.manifest.shards if s.name == shard_name)
        suite.observe_many(reader.iter_shard(info))


def _report_worker(
    units: list[tuple[str, str]],
    clock_ts: tuple[float, float],
    out_path: str,
) -> None:
    suite = TableSuite(clock_from_ts(*clock_ts))
    _observe_units(suite, units)
    Path(out_path).write_text(json.dumps(suite.snapshot()), encoding="utf-8")


def suite_from_shards(
    directories: Sequence[str | Path],
    clock: SimClock | None = None,
    workers: int = 1,
) -> TableSuite:
    """Stream every shard in ``directories`` into one merged TableSuite."""
    clock = clock if clock is not None else SimClock()
    units = shard_units(directories)
    if workers <= 1 or len(units) <= 1:
        suite = TableSuite(clock)
        _observe_units(suite, units)
        return suite

    workers = min(workers, len(units))
    assignments: list[list[tuple[str, str]]] = [[] for _ in range(workers)]
    for i, unit in enumerate(units):
        assignments[i % workers].append(unit)

    suite = TableSuite(clock)
    clock_ts = (clock.start_ts, clock.end_ts)
    ctx = mp.get_context("spawn")
    with tempfile.TemporaryDirectory(prefix="repro-report-") as tmp:
        out_paths = [str(Path(tmp) / f"report-worker-{i:02d}.json") for i in range(workers)]
        procs = [
            ctx.Process(
                target=_report_worker, args=(assignments[i], clock_ts, out_paths[i])
            )
            for i in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join()
        failures = [i for i, proc in enumerate(procs) if proc.exitcode != 0]
        if failures:
            raise RuntimeError(
                f"report workers failed: {', '.join(str(i) for i in failures)}"
            )
        # Merge in worker-index order (merge is commutative, but a fixed
        # order keeps runs reproducible down to accumulator internals).
        for path in out_paths:
            snapshot = json.loads(Path(path).read_text(encoding="utf-8"))
            suite.merge_snapshot(snapshot)
    return suite
