"""DKIM (RFC 6376) — verification as the receiver experiences it.

Full cryptographic verification is out of scope (and out of signal): a
receiver's DKIM check fails in practice when the selector's public-key
TXT record cannot be fetched or is malformed — exactly the failure mode
the paper's misconfiguration windows create.  ``evaluate_dkim`` resolves
the sender's DKIM TXT record at the given time and validates its shape.
"""

from __future__ import annotations

from enum import Enum

from repro.core import fastpath
from repro.dnssim.records import RecordType
from repro.dnssim.resolver import Resolver


class DkimVerdict(str, Enum):
    PASS = "pass"
    FAIL = "fail"  # record malformed / key mismatch
    NONE = "none"  # no record resolvable


_PARSE_MEMO = fastpath.register(fastpath.LruMemo("dkim-parse", capacity=2048, pure=True))


def parse_dkim_record(text: str) -> bool:
    """Shape validation of a ``v=DKIM1`` key record (pure; memoised)."""
    if fastpath.enabled():
        cached = _PARSE_MEMO.get(text)
        if cached is fastpath.MISSING:
            cached = _PARSE_MEMO.put(text, _parse_dkim_impl(text))
        return cached
    return _parse_dkim_impl(text)


def _parse_dkim_impl(text: str) -> bool:
    parts = [p.strip() for p in text.strip().split(";") if p.strip()]
    if not parts or not parts[0].lower().replace(" ", "") == "v=dkim1":
        return False
    tags = {}
    for part in parts[1:]:
        key, _, value = part.partition("=")
        tags[key.strip().lower()] = value.strip()
    # A key record must carry public-key material.
    return bool(tags.get("p"))


def evaluate_dkim(domain: str, resolver: Resolver, t: float) -> DkimVerdict:
    result = resolver.query(domain, RecordType.TXT_DKIM, t)
    if not result.ok:
        return DkimVerdict.NONE
    if parse_dkim_record(result.records[0].value):
        return DkimVerdict.PASS
    return DkimVerdict.FAIL
