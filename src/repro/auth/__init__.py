"""Sender-authentication substrate: SPF, DKIM, DMARC.

Receiver MTAs that enforce authentication evaluate the sender domain's
published records mechanistically: the SPF evaluator parses the ``v=spf1``
record and checks the connecting proxy IP against its mechanisms; the
DKIM check verifies a selector key is resolvable; DMARC combines the two
under the published policy.  Misconfiguration windows in the sender's
zone make the corresponding records unresolvable, which is exactly how
the paper's 9K broken sender domains manifest.
"""

from repro.auth.spf import (
    SPF_LOOKUP_LIMIT,
    SpfEvaluation,
    SpfRecord,
    evaluate_spf,
    evaluate_spf_record,
    parse_spf,
)
from repro.auth.dkim import evaluate_dkim
from repro.auth.dmarc import DmarcPolicy, evaluate_dmarc, parse_dmarc
from repro.auth.evaluator import AuthEvaluator, AuthResult, AuthFailureMode

__all__ = [
    "SPF_LOOKUP_LIMIT",
    "SpfEvaluation",
    "SpfRecord",
    "parse_spf",
    "evaluate_spf",
    "evaluate_spf_record",
    "evaluate_dkim",
    "DmarcPolicy",
    "parse_dmarc",
    "evaluate_dmarc",
    "AuthEvaluator",
    "AuthResult",
    "AuthFailureMode",
]
