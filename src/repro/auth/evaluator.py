"""Combined SPF + DKIM + DMARC evaluation, as a receiving MTA runs it."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.auth.dkim import DkimVerdict, evaluate_dkim
from repro.auth.dmarc import DmarcDisposition, evaluate_dmarc
from repro.auth.spf import SpfVerdict, evaluate_spf
from repro.dnssim.resolver import Resolver


class AuthFailureMode(str, Enum):
    NONE = "none"  # authenticated fine
    BOTH = "both"  # SPF and DKIM both fail
    SPF_ONLY = "spf"
    DKIM_ONLY = "dkim"
    DMARC = "dmarc"  # both fail under an explicit p=reject policy


@dataclass(frozen=True)
class AuthResult:
    spf: SpfVerdict
    dkim: DkimVerdict
    dmarc: DmarcDisposition

    @property
    def spf_pass(self) -> bool:
        return self.spf is SpfVerdict.PASS

    @property
    def dkim_pass(self) -> bool:
        return self.dkim is DkimVerdict.PASS

    @property
    def failure_mode(self) -> AuthFailureMode:
        if self.spf_pass or self.dkim_pass:
            return AuthFailureMode.NONE
        if self.dmarc is DmarcDisposition.REJECT:
            return AuthFailureMode.DMARC
        if not self.spf_pass and not self.dkim_pass:
            return AuthFailureMode.BOTH
        if not self.spf_pass:
            return AuthFailureMode.SPF_ONLY
        return AuthFailureMode.DKIM_ONLY

    @property
    def authenticated(self) -> bool:
        """RFC 7489 semantics: one passing aligned mechanism suffices."""
        return self.spf_pass or self.dkim_pass


class AuthEvaluator:
    """Evaluates a sender domain's authentication at a point in time."""

    def __init__(self, resolver: Resolver) -> None:
        self._resolver = resolver

    def evaluate(self, sender_domain: str, client_ip: str, t: float) -> AuthResult:
        spf = evaluate_spf(sender_domain, client_ip, self._resolver, t)
        dkim = evaluate_dkim(sender_domain, self._resolver, t)
        dmarc = evaluate_dmarc(sender_domain, spf, dkim, self._resolver, t)
        return AuthResult(spf=spf, dkim=dkim, dmarc=dmarc)
