"""Combined SPF + DKIM + DMARC evaluation, as a receiving MTA runs it."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.auth.dkim import DkimVerdict, evaluate_dkim
from repro.auth.dmarc import DmarcDisposition, evaluate_dmarc
from repro.auth.spf import (
    SPF_LOOKUP_LIMIT,
    SpfEvaluation,
    SpfVerdict,
    evaluate_spf,
    evaluate_spf_record,
)
from repro.core import fastpath
from repro.dnssim.records import RecordType
from repro.dnssim.resolver import Resolver


class AuthFailureMode(str, Enum):
    NONE = "none"  # authenticated fine
    BOTH = "both"  # SPF and DKIM both fail
    SPF_ONLY = "spf"
    DKIM_ONLY = "dkim"
    DMARC = "dmarc"  # both fail under an explicit p=reject policy


@dataclass(frozen=True)
class AuthResult:
    spf: SpfVerdict
    dkim: DkimVerdict
    dmarc: DmarcDisposition

    @property
    def spf_pass(self) -> bool:
        return self.spf is SpfVerdict.PASS

    @property
    def dkim_pass(self) -> bool:
        return self.dkim is DkimVerdict.PASS

    @property
    def failure_mode(self) -> AuthFailureMode:
        if self.spf_pass or self.dkim_pass:
            return AuthFailureMode.NONE
        if self.dmarc is DmarcDisposition.REJECT:
            return AuthFailureMode.DMARC
        if not self.spf_pass and not self.dkim_pass:
            return AuthFailureMode.BOTH
        if not self.spf_pass:
            return AuthFailureMode.SPF_ONLY
        return AuthFailureMode.DKIM_ONLY

    @property
    def authenticated(self) -> bool:
        """RFC 7489 semantics: one passing aligned mechanism suffices."""
        return self.spf_pass or self.dkim_pass


class _RecordingResolver:
    """Resolver proxy that remembers every (domain, rtype) consulted.

    The auth stack queries the resolver without an rng, so its outcome
    is a pure function of the consulted zones' states — recording which
    states were read lets the evaluator bound a cached result's
    validity exactly.
    """

    __slots__ = ("_inner", "queried")

    def __init__(self, inner: Resolver) -> None:
        self._inner = inner
        self.queried: set[tuple[str, RecordType]] = set()

    def query(self, domain, rtype, t, rng=None):
        self.queried.add((domain, rtype))
        return self._inner.query(domain, rtype, t, rng)


class _AuthEntry:
    __slots__ = ("result", "start", "end", "guards", "queried")

    def __init__(self, result, start, end, guards, queried=frozenset()) -> None:
        self.result = result
        self.start = start
        self.end = end
        #: tuple of (zone-or-None, token) pairs, one per consulted zone.
        self.guards = guards
        #: the (domain, rtype) pairs the evaluation read — inherited by
        #: any cached evaluation that reuses this one (SPF includes), so
        #: the outer entry's guards cover the inner zones too.
        self.queried = queried


class AuthEvaluator:
    """Evaluates a sender domain's authentication at a point in time.

    SPF/DKIM/DMARC evaluation draws no randomness, so for a fixed
    ``(sender_domain, client_ip)`` the result only changes when one of
    the consulted zones crosses a misconfiguration/registration window
    boundary.  Results are cached with that exact validity interval
    (plus zone mutation tokens), discovered by recording which zone
    states each evaluation read.
    """

    def __init__(self, resolver: Resolver) -> None:
        self._resolver = resolver
        self._cache: dict[tuple[str, str], _AuthEntry] = {}
        self._spf_cache: dict[tuple[str, str], _AuthEntry] = {}
        self._dkim_cache: dict[str, _AuthEntry] = {}
        self._dmarc_cache: dict[tuple, _AuthEntry] = {}
        self._stats = fastpath.CacheStats("auth-eval")

    def evaluate(self, sender_domain: str, client_ip: str, t: float) -> AuthResult:
        if not fastpath.enabled():
            return self._evaluate_impl(sender_domain, client_ip, self._resolver, t)
        key = (sender_domain, client_ip)
        entry = self._cache.get(key)
        if (
            entry is not None
            and entry.start <= t < entry.end
            and self._guards_valid(entry.guards)
        ):
            self._stats.hit()
            return entry.result
        self._stats.miss()
        # Only SPF reads the client IP; DKIM depends on the domain alone
        # and DMARC on (domain, spf, dkim).  Evaluating the three through
        # separate interval-guarded caches means a new proxy IP against a
        # known domain redoes just the SPF walk, not the whole stack.
        spf_e = self._spf_entry(sender_domain, client_ip, t, SPF_LOOKUP_LIMIT)
        dkim_e = self._component(
            self._dkim_cache, sender_domain, t,
            lambda resolver: evaluate_dkim(sender_domain, resolver, t),
        )
        spf, dkim = spf_e.result.verdict, dkim_e.result
        dmarc_e = self._component(
            self._dmarc_cache, (sender_domain, spf, dkim), t,
            lambda resolver: evaluate_dmarc(sender_domain, spf, dkim, resolver, t),
        )
        result = AuthResult(spf=spf, dkim=dkim, dmarc=dmarc_e.result)
        start = max(spf_e.start, dkim_e.start, dmarc_e.start)
        end = min(spf_e.end, dkim_e.end, dmarc_e.end)
        # One guard per distinct zone: the components usually share the
        # sender zone, and validating it once per hit is enough.
        guards = []
        seen = set()
        for guard in spf_e.guards + dkim_e.guards + dmarc_e.guards:
            marker = id(guard[0])
            if marker not in seen:
                seen.add(marker)
                guards.append(guard)
        self._cache[key] = _AuthEntry(result, start, end, tuple(guards))
        return result

    def _spf_entry(self, domain: str, client_ip: str, t: float, budget: int) -> _AuthEntry:
        """SPF walk cached per (domain, client IP), gated by lookup budget.

        The walk for an ``include``-d zone is the same whichever outer
        domain pulled it in, so the hook below routes the recursion back
        through this cache: a provider record shared by every customer
        domain is walked once per IP, and its consulted zones propagate
        into each outer entry's guard set via ``queried``.

        RFC 7208 §4.6.4 threads a *remaining lookup budget* through the
        recursion, so a cached :class:`SpfEvaluation` is only reusable
        when the budget question it answered covers the one being asked:

        * a completed walk that used ``lookups <= budget`` would proceed
          identically with any such budget — reuse as-is;
        * a completed walk that used more lookups than the caller has
          left would have overrun — synthesize the overrun without
          re-walking (a walk needing L lookups overruns at any budget
          < L), sharing the cached validity interval and guards;
        * an overrun walk answers every budget at or below the one it
          overran at — but a caller with *more* headroom needs a fresh
          walk, which replaces the cached one (its budget is strictly
          larger, so it answers strictly more callers).
        """
        key = (domain, client_ip)
        entry = self._spf_cache.get(key)
        if (
            entry is not None
            and entry.start <= t < entry.end
            and self._guards_valid(entry.guards)
        ):
            ev: SpfEvaluation = entry.result
            if not ev.overran:
                if ev.lookups <= budget:
                    return entry
                synthetic = SpfEvaluation(SpfVerdict.PERMERROR, ev.lookups, True, budget)
                return _AuthEntry(
                    synthetic, entry.start, entry.end, entry.guards, entry.queried
                )
            if budget <= ev.budget:
                return entry

        recording = _RecordingResolver(self._resolver)

        def include(inner_domain: str, remaining: int) -> SpfEvaluation:
            inner = self._spf_entry(inner_domain, client_ip, t, remaining)
            recording.queried |= inner.queried
            return inner.result

        evaluation = evaluate_spf_record(
            domain, client_ip, recording, t, budget, _include=include
        )
        entry = self._entry_from_recording(evaluation, recording, t)
        self._spf_cache[key] = entry
        return entry

    def _component(self, cache: dict, key, t: float, compute) -> _AuthEntry:
        entry = cache.get(key)
        if (
            entry is not None
            and entry.start <= t < entry.end
            and self._guards_valid(entry.guards)
        ):
            return entry
        recording = _RecordingResolver(self._resolver)
        result = compute(recording)
        entry = self._entry_from_recording(result, recording, t)
        cache[key] = entry
        return entry

    def _entry_from_recording(
        self, result, recording: _RecordingResolver, t: float
    ) -> _AuthEntry:
        """Bound ``result``'s validity by the zone states the walk read."""
        queried = frozenset(recording.queried)
        start, end = float("-inf"), float("inf")
        guards = []
        seen = set()
        for domain, rtype in queried:
            s, e, zone, token = self._resolver.state_span(domain, rtype, t)
            if s > start:
                start = s
            if e < end:
                end = e
            marker = id(zone)
            if marker not in seen:
                seen.add(marker)
                guards.append((zone, token))
        return _AuthEntry(result, start, end, tuple(guards), queried)

    def _guards_valid(self, guards) -> bool:
        state_token = self._resolver.state_token
        for zone, token in guards:
            if state_token(zone) != token:
                return False
        return True

    @staticmethod
    def _evaluate_impl(sender_domain, client_ip, resolver, t) -> AuthResult:
        spf = evaluate_spf(sender_domain, client_ip, resolver, t)
        dkim = evaluate_dkim(sender_domain, resolver, t)
        dmarc = evaluate_dmarc(sender_domain, spf, dkim, resolver, t)
        return AuthResult(spf=spf, dkim=dkim, dmarc=dmarc)
