"""SPF (RFC 7208) — the subset real outgoing-mail checks exercise.

Supported mechanisms: ``ip4`` (exact address or prefix), ``include``
(recursive evaluation of another domain's record), ``a``/``mx``
(membership in the domain's A records), and ``all``.  Qualifiers ``+``
(pass), ``-`` (fail), ``~`` (softfail), ``?`` (neutral).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import NamedTuple

from repro.core import fastpath
from repro.dnssim.records import RecordType
from repro.dnssim.resolver import Resolver

#: RFC 7208 §4.6.4: mechanisms that require DNS lookups (``include``,
#: ``a``, ``mx``) are limited to 10 per evaluation — the whole recursive
#: walk, not per record.  Exceeding the limit is a permanent error.
SPF_LOOKUP_LIMIT = 10


class SpfVerdict(str, Enum):
    PASS = "pass"
    FAIL = "fail"
    SOFTFAIL = "softfail"
    NEUTRAL = "neutral"
    NONE = "none"  # no record published / unresolvable
    PERMERROR = "permerror"


_QUALIFIERS = {"+": SpfVerdict.PASS, "-": SpfVerdict.FAIL,
               "~": SpfVerdict.SOFTFAIL, "?": SpfVerdict.NEUTRAL}


@dataclass(frozen=True)
class SpfMechanism:
    qualifier: SpfVerdict
    kind: str  # "ip4" | "include" | "a" | "mx" | "all"
    value: str = ""


@dataclass(frozen=True)
class SpfRecord:
    mechanisms: tuple[SpfMechanism, ...]

    @property
    def has_all(self) -> bool:
        return any(m.kind == "all" for m in self.mechanisms)


_PARSE_MEMO = fastpath.register(
    fastpath.LruMemo("spf-parse", capacity=2048, pure=True)
)


def parse_spf(text: str) -> SpfRecord | None:
    """Parse a ``v=spf1 ...`` TXT record; None when malformed.

    Parsing is pure and records repeat across millions of evaluations,
    so results are memoised by record text (unless the fast path is off).
    """
    if fastpath.enabled():
        cached = _PARSE_MEMO.get(text)
        if cached is fastpath.MISSING:
            cached = _PARSE_MEMO.put(text, _parse_spf_impl(text))
        return cached
    return _parse_spf_impl(text)


def _parse_spf_impl(text: str) -> SpfRecord | None:
    parts = text.strip().split()
    if not parts or parts[0].lower() != "v=spf1":
        return None
    mechanisms: list[SpfMechanism] = []
    for token in parts[1:]:
        qualifier = SpfVerdict.PASS
        if token and token[0] in _QUALIFIERS:
            qualifier = _QUALIFIERS[token[0]]
            token = token[1:]
        if not token:
            return None
        kind, _, value = token.partition(":")
        kind = kind.lower()
        if kind not in ("ip4", "include", "a", "mx", "all"):
            return None
        if kind in ("ip4", "include") and not value:
            return None
        mechanisms.append(SpfMechanism(qualifier, kind, value))
    return SpfRecord(tuple(mechanisms))


#: (ip, spec) -> bool; a plain bounded dict (not LruMemo — this hit
#: path is hot enough that LRU reinsertion would outweigh the parse).
_MATCH_MEMO: dict[tuple[str, str], bool] = {}
_MATCH_CAP = 65536


def _ip_matches(ip: str, spec: str) -> bool:
    """Exact IPv4 or prefix match (``10.1.2.3`` or ``10.1.0.0/16``).

    Pure string arithmetic over a tiny key space (the proxy fleet's IPs
    against each record's prefixes), so the verdict is memoised per
    ``(ip, spec)`` pair when the fast path is on.
    """
    if fastpath.enabled():
        key = (ip, spec)
        cached = _MATCH_MEMO.get(key)
        if cached is None:
            if len(_MATCH_MEMO) >= _MATCH_CAP:
                _MATCH_MEMO.clear()
            cached = _MATCH_MEMO[key] = _ip_matches_impl(ip, spec)
        return cached
    return _ip_matches_impl(ip, spec)


def _ip_matches_impl(ip: str, spec: str) -> bool:
    if "/" not in spec:
        return ip == spec
    network, _, bits_s = spec.partition("/")
    try:
        bits = int(bits_s)
        ip_v = _ipv4_int(ip)
        net_v = _ipv4_int(network)
    except ValueError:
        return False
    if not 0 <= bits <= 32:
        return False
    if bits == 0:
        return True
    mask = ((1 << bits) - 1) << (32 - bits)
    return (ip_v & mask) == (net_v & mask)


def _ipv4_int(ip: str) -> int:
    parts = ip.split(".")
    if len(parts) != 4:
        raise ValueError(ip)
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ValueError(ip)
        value = (value << 8) | octet
    return value


class SpfEvaluation(NamedTuple):
    """Outcome of walking one SPF record (RFC 7208 check_host).

    ``lookups`` counts the DNS-querying mechanisms consumed by this walk
    including everything its ``include``s consumed; ``overran`` marks a
    walk abandoned because it would exceed ``budget`` remaining lookups.
    An overrun is PERMERROR at the top level, but a cached inner walk
    records the budget it overran at so a caller with *more* headroom
    knows to re-walk rather than reuse it.
    """

    verdict: SpfVerdict
    lookups: int
    overran: bool
    budget: int


def evaluate_spf(
    domain: str,
    client_ip: str,
    resolver: Resolver,
    t: float,
    _include=None,
) -> SpfVerdict:
    """Evaluate the sender domain's SPF record for ``client_ip`` at ``t``.

    ``_include`` (optional) replaces the direct recursion for ``include``
    mechanisms with ``_include(inner_domain, remaining_budget)`` returning
    an :class:`SpfEvaluation`.  The auth evaluator passes a memoising
    hook so shared include zones (every customer domain including the
    same provider record) are walked once per (zone, client IP) instead
    of once per outer domain.
    """
    evaluation = evaluate_spf_record(
        domain, client_ip, resolver, t, SPF_LOOKUP_LIMIT, _include=_include
    )
    if evaluation.overran:
        return SpfVerdict.PERMERROR
    return evaluation.verdict


def evaluate_spf_record(
    domain: str,
    client_ip: str,
    resolver: Resolver,
    t: float,
    budget: int,
    _include=None,
) -> SpfEvaluation:
    """Walk one record with ``budget`` DNS-querying mechanisms left.

    Implements the RFC 7208 semantics the simulator's scenarios rely on:

    * §4.6.4 — ``include``/``a``/``mx`` each consume one lookup from a
      budget shared across the entire recursive evaluation; running out
      aborts with ``overran`` (→ PERMERROR at the top level).
    * §5.2 — an ``include`` whose inner result is ``none`` or
      ``permerror`` makes the whole evaluation PERMERROR; ``pass``
      matches; ``fail``/``softfail``/``neutral`` simply don't match.
    * ``a:host`` / ``mx:domain`` query their explicit target when given,
      falling back to the current domain for the bare forms.
    """
    result = resolver.query(domain, RecordType.TXT_SPF, t)
    if not result.ok:
        return SpfEvaluation(SpfVerdict.NONE, 0, False, budget)
    record = parse_spf(result.records[0].value)
    if record is None:
        return SpfEvaluation(SpfVerdict.PERMERROR, 0, False, budget)

    used = 0
    for mechanism in record.mechanisms:
        matched = False
        if mechanism.kind == "ip4":
            matched = _ip_matches(client_ip, mechanism.value)
        elif mechanism.kind == "include":
            if used >= budget:
                return SpfEvaluation(SpfVerdict.PERMERROR, used, True, budget)
            used += 1
            remaining = budget - used
            if _include is not None:
                inner = _include(mechanism.value, remaining)
            else:
                inner = evaluate_spf_record(
                    mechanism.value, client_ip, resolver, t, remaining
                )
            used += inner.lookups
            if inner.overran:
                return SpfEvaluation(SpfVerdict.PERMERROR, used, True, budget)
            if inner.verdict in (SpfVerdict.NONE, SpfVerdict.PERMERROR):
                # RFC 7208 §5.2: an unresolvable or malformed included
                # record is a permanent error, not a non-match.
                return SpfEvaluation(SpfVerdict.PERMERROR, used, False, budget)
            matched = inner.verdict is SpfVerdict.PASS
        elif mechanism.kind in ("a", "mx"):
            if used >= budget:
                return SpfEvaluation(SpfVerdict.PERMERROR, used, True, budget)
            used += 1
            rtype = RecordType.A if mechanism.kind == "a" else RecordType.MX
            target = mechanism.value or domain
            answer = resolver.query(target, rtype, t)
            matched = any(r.value == client_ip for r in answer.records)
        elif mechanism.kind == "all":
            matched = True
        if matched:
            return SpfEvaluation(mechanism.qualifier, used, False, budget)
    return SpfEvaluation(SpfVerdict.NEUTRAL, used, False, budget)
