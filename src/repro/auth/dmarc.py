"""DMARC (RFC 7489) — policy lookup and disposition.

DMARC passes when SPF *or* DKIM passes (identifier alignment is implied
in the simulator: senders sign/publish for their own domain).  When both
fail, the published policy decides the disposition: ``none`` (deliver),
``quarantine``/``reject`` (the receiver may bounce — the paper's
"not accepted due to domain's DMARC policy" NDRs).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.auth.dkim import DkimVerdict
from repro.auth.spf import SpfVerdict
from repro.core import fastpath
from repro.dnssim.records import RecordType
from repro.dnssim.resolver import Resolver


class DmarcDisposition(str, Enum):
    PASS = "pass"
    NONE_POLICY = "none"  # failed, but policy p=none → deliver
    QUARANTINE = "quarantine"
    REJECT = "reject"
    NO_POLICY = "no_policy"  # no DMARC record published


@dataclass(frozen=True)
class DmarcPolicy:
    policy: str  # "none" | "quarantine" | "reject"

    @classmethod
    def default(cls) -> "DmarcPolicy":
        return cls(policy="none")


_PARSE_MEMO = fastpath.register(fastpath.LruMemo("dmarc-parse", capacity=2048, pure=True))


def parse_dmarc(text: str) -> DmarcPolicy | None:
    """Parse a ``v=DMARC1`` policy record (pure; memoised)."""
    if fastpath.enabled():
        cached = _PARSE_MEMO.get(text)
        if cached is fastpath.MISSING:
            cached = _PARSE_MEMO.put(text, _parse_dmarc_impl(text))
        return cached
    return _parse_dmarc_impl(text)


def _parse_dmarc_impl(text: str) -> DmarcPolicy | None:
    parts = [p.strip() for p in text.strip().split(";") if p.strip()]
    if not parts or parts[0].lower().replace(" ", "") != "v=dmarc1":
        return None
    policy = "none"
    for part in parts[1:]:
        key, _, value = part.partition("=")
        if key.strip().lower() == "p":
            value = value.strip().lower()
            if value not in ("none", "quarantine", "reject"):
                return None
            policy = value
    return DmarcPolicy(policy=policy)


def evaluate_dmarc(
    domain: str,
    spf: SpfVerdict,
    dkim: DkimVerdict,
    resolver: Resolver,
    t: float,
) -> DmarcDisposition:
    result = resolver.query(domain, RecordType.TXT_DMARC, t)
    if not result.ok:
        return DmarcDisposition.NO_POLICY
    policy = parse_dmarc(result.records[0].value)
    if policy is None:
        return DmarcDisposition.NO_POLICY
    if spf is SpfVerdict.PASS or dkim is DkimVerdict.PASS:
        return DmarcDisposition.PASS
    if policy.policy == "reject":
        return DmarcDisposition.REJECT
    if policy.policy == "quarantine":
        return DmarcDisposition.QUARANTINE
    return DmarcDisposition.NONE_POLICY
