"""Country-pair network quality: timeouts, interruptions, latency.

The receiver country's ``infra_timeout`` sets the base SMTP-timeout
probability; the sender proxy's location modulates it via the pair table
below.  The paper's Figure 8 shows Hong Kong as the anomalous sender row —
much worse than other proxies into several African destinations (HK→NA
35.11%, HK→RW 51.35%) yet far *better* into a few others (HK→BZ 0.34%,
HK→NP 0.87%), reflecting peering idiosyncrasies.  Latency (Fig 10) is
log-normal around the receiver country's median with a sender-pair factor;
Cambodia/Angola/Bolivia are served dramatically better from Hong Kong than
from other proxies (paper: HK→KH median 8.93 s vs ~79 s from elsewhere).
"""

from __future__ import annotations

import math

from repro.geo.countries import Country, country_by_code
from repro.util.rng import RandomSource

#: Multiplier applied to the receiver country's base timeout probability
#: for a given (sender country, receiver country) pair.
PAIR_TIMEOUT_MULTIPLIERS: dict[tuple[str, str], float] = {
    # Hong Kong's spiky row of Figure 8.
    ("HK", "NA"): 1.55,
    ("HK", "RW"): 2.90,
    ("HK", "SV"): 1.05,
    ("HK", "BZ"): 0.02,
    ("HK", "DO"): 1.70,
    ("HK", "NP"): 0.07,
    ("HK", "SK"): 0.65,
    ("HK", "SY"): 0.95,
    ("HK", "KE"): 0.90,
    ("HK", "PS"): 1.10,
    ("HK", "EG"): 0.75,
    ("HK", "LI"): 0.70,
    ("HK", "KG"): 0.04,
    ("HK", "NG"): 0.65,
    ("HK", "MA"): 0.35,
    ("HK", "CI"): 1.35,
    ("HK", "GE"): 0.60,
    ("HK", "PR"): 0.20,
    ("HK", "MN"): 0.10,
    ("HK", "ZA"): 0.02,
    # Germany reaches Belize and Mongolia through unusually clean paths.
    ("DE", "BZ"): 0.02,
    ("DE", "MN"): 0.20,
    # Great-Britain→El-Salvador is lossier than average.
    ("GB", "SV"): 1.25,
}

#: Per-sender-country baseline multiplier (mild row effects in Fig 8:
#: the US row runs slightly hot everywhere).
SENDER_BASE_MULTIPLIERS: dict[str, float] = {
    "US": 1.10,
    "DE": 0.95,
    "GB": 1.02,
    "HK": 1.00,
    "SG": 0.90,
    "IN": 1.15,
}

#: (sender, receiver) latency factors; <1 means that proxy reaches the
#: destination on a much faster path than the global median.
PAIR_LATENCY_FACTORS: dict[tuple[str, str], float] = {
    ("HK", "KH"): 0.11,  # 8.93 s vs ~79 s from elsewhere (Appendix C)
    ("SG", "KH"): 1.00,
    ("HK", "AO"): 0.35,
    ("HK", "BO"): 0.40,
    ("SG", "SG"): 0.70,
    ("HK", "HK"): 0.70,
    ("DE", "DE"): 0.80,
    ("US", "US"): 0.80,
    ("GB", "GB"): 0.80,
}


class NetworkModel:
    """Samples per-attempt network outcomes for a sender/receiver pair."""

    def __init__(
        self,
        timeout_scale: float = 1.0,
        interrupt_ratio: float = 0.62,
        latency_sigma: float = 0.55,
    ) -> None:
        """``interrupt_ratio`` sets T15 volume relative to T14 (the paper
        sees 6.51% interruptions vs 15.04% timeouts among bounces)."""
        self.timeout_scale = timeout_scale
        self.interrupt_ratio = interrupt_ratio
        self.latency_sigma = latency_sigma

    # -- probabilities -------------------------------------------------------

    def timeout_probability(self, sender_country: str, receiver_country: str) -> float:
        receiver = country_by_code(receiver_country)
        base = receiver.infra_timeout * self.timeout_scale
        base *= SENDER_BASE_MULTIPLIERS.get(sender_country, 1.0)
        base *= PAIR_TIMEOUT_MULTIPLIERS.get((sender_country, receiver_country), 1.0)
        return min(base, 0.95)

    def interrupt_probability(self, sender_country: str, receiver_country: str) -> float:
        return min(
            self.timeout_probability(sender_country, receiver_country) * self.interrupt_ratio,
            0.5,
        )

    # -- latency --------------------------------------------------------------

    def latency_ms(
        self,
        sender_country: str,
        receiver_country: str,
        rng: RandomSource,
        retry_penalty: float = 1.0,
    ) -> int:
        """Successful-attempt delivery latency in milliseconds."""
        receiver = country_by_code(receiver_country)
        median_ms = receiver.latency_median_s * 1000.0
        median_ms *= PAIR_LATENCY_FACTORS.get((sender_country, receiver_country), 1.0)
        median_ms *= retry_penalty
        value = rng.lognormal(median_ms, self.latency_sigma, cap=median_ms * 40.0)
        return max(int(value), 200)

    def latency_plan(
        self,
        sender_country: str,
        receiver_country: str,
        retry_penalty: float = 1.0,
    ) -> tuple[float, float]:
        """``(log_median_ms, cap_ms)`` for a bit-exact replay of
        :meth:`latency_ms`: draw ``exp(log_median + latency_sigma *
        gauss(0, 1))``, truncate at ``cap_ms``, then ``max(int(·), 200)``.
        The columnar executor caches this per (pair, penalty) so the hot
        loop skips the country table walk."""
        receiver = country_by_code(receiver_country)
        median_ms = receiver.latency_median_s * 1000.0
        median_ms *= PAIR_LATENCY_FACTORS.get((sender_country, receiver_country), 1.0)
        median_ms *= retry_penalty
        return math.log(median_ms), median_ms * 40.0

    def timeout_latency_ms(self, rng: RandomSource) -> int:
        """Latency recorded for an attempt that timed out (the SMTP
        timeout budget plus jitter; Coremail-style MTAs give up around
        5 minutes)."""
        return int(rng.uniform(290_000, 330_000))

    def interrupt_latency_ms(self, rng: RandomSource) -> int:
        """Interrupted sessions die mid-transfer, earlier than timeouts."""
        return int(rng.uniform(8_000, 120_000))
