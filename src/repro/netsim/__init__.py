"""Network-quality substrate.

Drives the paper's infrastructure analyses: per-country SMTP timeout
probability (Fig 8), per-country delivery latency (Fig 10 / Appendix C),
and sender-location effects (the Hong-Kong anomalies in both figures).
"""

from repro.netsim.quality import NetworkModel, PAIR_TIMEOUT_MULTIPLIERS

__all__ = ["NetworkModel", "PAIR_TIMEOUT_MULTIPLIERS"]
