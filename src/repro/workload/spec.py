"""The unit the workload generator hands the delivery engine."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(slots=True)
class EmailSpec:
    """One email to be delivered.

    ``tags`` record how the generator produced the email (ground truth for
    evaluation: ``username_typo``, ``domain_typo``, ``stale_contact``,
    ``guess_campaign``, ``bulk_spam``, ``automation``).
    """

    t: float
    sender: str
    receiver: str
    spamminess: float
    size_bytes: int
    recipient_count: int
    tags: tuple[str, ...] = ()

    @property
    def sender_domain(self) -> str:
        return self.sender.rsplit("@", 1)[-1]

    @property
    def receiver_domain(self) -> str:
        return self.receiver.rsplit("@", 1)[-1]
