"""Scenario campaign traffic: :class:`CampaignOp` → extra workloads.

A campaign is the traffic half of a scenario (see
:mod:`repro.world.overlay`): a steady mail stream from one benign sender
domain's real users to real mailboxes at chosen receivers.  It compiles
to the existing extra-workload contract
(``Callable[[WorldModel, RandomSource], Iterable[EmailSpec]]``), so the
stream, parallel, and columnar runners all materialise it with the same
named child stream — byte parity comes from the plumbing, not from this
module.

Campaigns target *real* mailbox usernames on purpose: the failures a
scenario studies (SPF permerror bounces, MX outage timeouts) live at the
domain/MTA layer, and unknown-user noise (T8) would dilute them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from repro.util.clock import DAY_SECONDS
from repro.util.rng import RandomSource
from repro.workload.spec import EmailSpec
from repro.world.overlay import CampaignOp, ScenarioError, resolve_receiver, resolve_sender

if TYPE_CHECKING:  # pragma: no cover
    from repro.world.model import WorldModel

#: Scenario campaign mail is short, templated notification-style mail.
_SIZE_RANGE = (1_400, 26_000)


def scenario_workloads(config) -> list:
    """Extract the campaign workloads carried by ``config.scenario``.

    Returns a list suitable for the ``extra_workloads`` argument of
    :func:`repro.stream.runner.stream_simulation` and
    :func:`repro.parallel.runner.run_parallel_simulation` — in op order,
    so workload indices (and thus ``extra/{i}`` child streams) are stable.
    """
    return [
        campaign_workload(op)
        for op in getattr(config, "scenario", ())
        if isinstance(op, CampaignOp)
    ]


def campaign_workload(op: CampaignOp):
    """Compile one :class:`CampaignOp` into an extra-workload callable."""
    op.validate()

    def workload(world: "WorldModel", rng: RandomSource) -> Iterator[EmailSpec]:
        return _generate(world, rng, op)

    workload.__name__ = f"campaign_{op.name}"
    return workload


def _generate(
    world: "WorldModel", rng: RandomSource, op: CampaignOp
) -> Iterator[EmailSpec]:
    sender_domain_name = resolve_sender(world, op.sender_index)
    sender_domain = next(
        d for d in world.sender_domains if d.name == sender_domain_name
    )
    senders = sorted(user.address for user in sender_domain.users)
    if not senders:
        raise ScenarioError(
            f"campaign {op.name!r}: sender domain {sender_domain_name!r} has no users"
        )

    receiver_names: list[str] = []
    for name in op.receiver_domains:
        if name not in world.receiver_domains:
            raise ScenarioError(
                f"campaign {op.name!r}: unknown receiver domain {name!r}"
            )
        receiver_names.append(name)
    for index in op.receiver_indices:
        receiver_names.append(resolve_receiver(world, index))

    # Real mailboxes only — domain-layer failures, not unknown-user noise.
    targets: list[str] = []
    for name in receiver_names:
        usernames = sorted(world.receiver_domains[name].mailboxes)
        if not usernames:
            raise ScenarioError(
                f"campaign {op.name!r}: receiver {name!r} has no mailboxes"
            )
        targets.extend(f"{username}@{name}" for username in usernames[:40])

    clock = world.clock
    tags = ("scenario", op.name)
    first_day = max(0, op.start_day)
    last_day = min(op.end_day, clock.n_days)
    for day in range(first_day, last_day):
        day_rng = rng.child(f"day/{day}")
        day_start = clock.day_start(day)
        for _ in range(op.per_day):
            yield EmailSpec(
                t=day_start + day_rng.uniform(0.0, DAY_SECONDS - 1.0),
                sender=day_rng.choice(senders),
                receiver=day_rng.choice(targets),
                spamminess=op.spamminess,
                size_bytes=int(day_rng.uniform(*_SIZE_RANGE)),
                recipient_count=1,
                tags=tags,
            )
