"""Benign traffic generation.

Each email is composed by a sender user picked from the benign population
(automation accounts weighted up), addressed to a contact from their list.
Typed addresses are then corrupted with the paper's user-error rates:
username typos (before @) and domain typos (after @).  Stale contacts are
mailed as stored — including ones at expired domains.

Content: most mail is clean (low latent spamminess); a marketing slice is
borderline; Coremail's outgoing filter flag is applied by the engine.
"""

from __future__ import annotations

import hashlib
import random as _pyrandom
from bisect import bisect_left, bisect_right
from operator import attrgetter
from itertools import accumulate
from math import cos, exp, log, pi, sin, sqrt
from typing import Iterator

from repro.core import fastpath
from repro.typosquat.generate import sample_domain_typo, sample_username_typo
from repro.util.rng import RandomSource
from repro.util.text import split_address
from repro.workload.schedule import ArrivalSchedule
from repro.workload.spec import EmailSpec
from repro.world.model import WorldModel
from repro.world.senders import SenderUser

#: ``math.log`` of the size log-normal's median (``_sample_size``); the
#: fast compose path inlines ``RandomSource.lognormal`` around it.
_LOG_SIZE_MEDIAN = log(42_000)

#: ``random.Random.seed``'s C implementation.  For an int argument the
#: Python wrapper only type-checks, calls this, and clears ``gauss_next``
#: — the fast compose loop does the same without the wrapper frame.
_RAW_SEED = _pyrandom.Random.__mro__[1].seed

#: ``random.py``'s TWOPI, for the inlined ``Random.gauss`` replica.
_TWOPI = 2.0 * pi


class TrafficGenerator:
    """Generates the benign email stream (attacker flows are separate)."""

    def __init__(self, world: WorldModel, rng: RandomSource) -> None:
        self.world = world
        self.rng = rng
        self.schedule = ArrivalSchedule(world.clock, world.config.emails_per_day_scaled)
        self._sender_sampler = world.sender_sampler(rng.child("senders"))
        # Per-user cumulative contact weights (fast path only).  Guarded by
        # the contact list's identity and length so a rebuilt or extended
        # list recomputes the table.
        self._contact_cum: dict[str, tuple[list, list[float], float]] = {}
        # Reusable per-email child stream (fast path only): reseeding the
        # wrapped Random in place is draw-identical to constructing the
        # child RandomSource the reference path builds per email.
        self._scratch: RandomSource | None = None
        # Contact-address splits (fast path only): the same few thousand
        # contact addresses recur every day, so one generator-lifetime
        # dict probe replaces the split_address call in the hot loop.
        self._split_cache: dict[str, tuple[str, str]] = {}

    def generate(self) -> list[EmailSpec]:
        """The full benign stream across the measurement window, in time
        order within each day."""
        return list(self.iter_specs())

    def day_specs(self, day: int) -> list[EmailSpec]:
        """One day's benign emails, sorted by send time.

        Every random input of a day — times, typos, content, *and* sender
        identities — draws from the day's own named random stream (sender
        picks go through a per-day view of the world's shared popularity
        sampler), so any day can be generated independently of any other.
        That independence is what lets the parallel runtime partition the
        window into day-range slices without perturbing the output.
        """
        day_rng = self.rng.child(f"day/{day}")
        volume = self.schedule.day_volume(day, day_rng)
        sender_rng = day_rng.child("senders")
        sender_sampler = self._sender_sampler.with_rng(sender_rng)
        if fastpath.enabled():
            return self._day_specs_fast(day, day_rng, sender_rng, sender_sampler, volume)
        out: list[EmailSpec] = []
        for i in range(volume):
            spec = self._compose(day, day_rng.child(str(i)), sender_sampler)
            if spec is not None:
                out.append(spec)
        out.sort(key=attrgetter("t"))
        return out

    def _day_specs_fast(
        self, day: int, day_rng: RandomSource, sender_rng: RandomSource,
        sender_sampler, volume: int,
    ) -> list[EmailSpec]:
        """:meth:`day_specs`, draw for draw, with the per-email ceremony
        inlined (see docs/PERFORMANCE.md).

        Three costs dominate the reference compose loop and all three are
        replayable exactly: the per-email child ``RandomSource`` (replaced
        by one reusable stream reseeded in place with the same sha256-derived
        seed, the prefix hashed once per day), the sampling helpers (inlined
        as the literal arithmetic of their reference implementations on
        bound ``random.Random`` methods), and the schedule/config attribute
        walks (hoisted out of the loop — all pure values)."""
        scratch = self._scratch
        if scratch is None:
            scratch = self._scratch = RandomSource(0, name="compose-scratch")
        r = scratch._rng
        rand = r.random
        getrandbits = r.getrandbits
        randint = r.randint
        # RandomSource.child(str(i)) == Random(sha256(f"{seed}:{i}")[:8]).
        prefix = hashlib.sha256(f"{day_rng.seed}:".encode())
        # WeightedSampler.draw over the shared popularity table.
        s_rand = sender_rng._rng.random
        s_items, s_cum, s_total = sender_sampler.table()
        s_n = len(s_items)
        schedule = self.schedule
        hour_cdf = schedule._hour_cdf
        day_start = schedule.clock.day_start(day)
        config = self.world.config
        u_rate = config.username_typo_rate
        d_rate = config.domain_typo_rate
        contact_cum = self._contact_cum
        split_cache = self._split_cache
        split_get = split_cache.get
        out: list[EmailSpec] = []
        append = out.append
        for i in range(volume):
            h = prefix.copy()
            h.update(str(i).encode())
            scratch.seed = seed = int.from_bytes(h.digest()[:8], "big")
            _RAW_SEED(r, seed)
            r.gauss_next = None
            # sender_sampler.draw()
            u = s_rand() * s_total
            index = bisect_right(s_cum, u)
            if index >= s_n:
                index = s_n - 1
            user = s_items[index]
            # _pick_contact: weighted_choice_cum over the cached table.
            contacts = user.contacts
            if not contacts:
                continue
            address = user.address
            entry = contact_cum.get(address)
            if (
                entry is None
                or entry[0] is not contacts
                or len(entry[1]) != len(contacts)
            ):
                cum = list(accumulate(c.weight for c in contacts))
                entry = (contacts, cum, cum[-1] + 0.0)
                contact_cum[address] = entry
            total = entry[2]
            if total <= 0.0:
                raise ValueError("total of weights must be greater than zero")
            contact = contacts[
                bisect_right(entry[1], rand() * total, 0, len(contacts) - 1)
            ]
            # ArrivalSchedule.sample_send_time: the linear CDF scan picks
            # the first hour whose edge is >= u, which is bisect_left; the
            # sum is parenthesised exactly like the reference (day_start +
            # offset) so no 1-ulp association drift can creep in.
            u = rand()
            hour = bisect_left(hour_cdf, u)
            t = day_start + (hour * 3600.0 + 3600.0 * rand())
            # _apply_typos (chance() inlined; samplers only on a hit)
            caddr = contact.address
            receiver = caddr
            tags: tuple[str, ...] = ()
            parts = split_get(caddr)
            if parts is None:
                parts = split_cache[caddr] = split_address(caddr)
            user_part, domain_part = parts
            typoed = False
            if u_rate > 0.0 and (u_rate >= 1.0 or rand() < u_rate):
                typo = sample_username_typo(user_part, scratch)
                if typo is not None:
                    receiver = f"{typo.text}@{domain_part}"
                    tags = ("username_typo",)
                    typoed = True
            if not typoed and d_rate > 0.0 and (d_rate >= 1.0 or rand() < d_rate):
                typo = sample_domain_typo(domain_part, scratch)
                if typo is not None:
                    receiver = f"{user_part}@{typo.text}"
                    tags = ("domain_typo",)
            if contact.stale:
                tags = tags + ("stale_contact",)
                if user.is_automation:
                    tags = tags + ("automation",)
            # _sample_spamminess (Random.gauss inlined; one draw, the
            # branch only picks mu/sigma)
            roll = rand()
            z = r.gauss_next
            r.gauss_next = None
            if z is None:
                x2pi = rand() * _TWOPI
                g2rad = sqrt(-2.0 * log(1.0 - rand()))
                z = cos(x2pi) * g2rad
                r.gauss_next = sin(x2pi) * g2rad
            if roll < 0.86:
                spamminess = 0.08 + z * 0.06
            elif roll < 0.982:
                spamminess = 0.42 + z * 0.14
            else:
                spamminess = 0.80 + z * 0.10
            if spamminess < 0.0:
                spamminess = 0.0
            elif spamminess > 1.0:
                spamminess = 1.0
            # _sample_size (lognormal inlined; the huge-attachment slice
            # keeps the library randint — it is too rare to matter)
            if rand() < 0.0008:
                size = randint(27_000_000, 65_000_000)
            else:
                z = r.gauss_next
                r.gauss_next = None
                if z is None:
                    x2pi = rand() * _TWOPI
                    g2rad = sqrt(-2.0 * log(1.0 - rand()))
                    z = cos(x2pi) * g2rad
                    r.gauss_next = sin(x2pi) * g2rad
                value = exp(_LOG_SIZE_MEDIAN + 1.6 * (0.0 + z * 1.0))
                if value > 20_000_000.0:
                    value = 20_000_000.0
                size = int(value)
                if size < 600:
                    size = 600
            # _sample_recipient_count: randint(a, b) == a + _randbelow(b+1-a),
            # and _randbelow(n) draws getrandbits(n.bit_length()) until the
            # value falls under n — inlined with the literal widths (4, 56,
            # 340 have bit lengths 3, 6, 9).
            if rand() < 0.985:
                v = getrandbits(3)
                while v >= 4:
                    v = getrandbits(3)
                rcpt = 1 + v
            elif rand() < 0.9:
                v = getrandbits(6)
                while v >= 56:
                    v = getrandbits(6)
                rcpt = 5 + v
            else:
                v = getrandbits(9)
                while v >= 340:
                    v = getrandbits(9)
                rcpt = 61 + v
            append(EmailSpec(t, address, receiver, spamminess, size, rcpt, tags))
        out.sort(key=attrgetter("t"))
        return out

    def iter_specs(self) -> Iterator[EmailSpec]:
        """Lazily yield the benign stream in time order, holding at most
        one day's specs in memory.

        Send times never cross day boundaries, so per-day sorted chunks
        concatenate into the exact sequence a global stable sort of the
        whole window would produce.
        """
        return self.iter_day_range(0, self.world.clock.n_days)

    def iter_day_range(self, day_start: int, day_end: int) -> Iterator[EmailSpec]:
        """Lazily yield days ``[day_start, day_end)`` in time order — the
        per-slice entry point of the parallel runtime."""
        for day in range(day_start, day_end):
            yield from self.day_specs(day)

    def _compose(self, day: int, rng: RandomSource, sender_sampler) -> EmailSpec | None:
        user = sender_sampler.draw()
        contact = self._pick_contact(user, rng)
        if contact is None:
            return None
        t = self.schedule.sample_send_time(day, rng)
        receiver, tags = self._apply_typos(contact.address, rng)
        if contact.stale:
            tags = tags + ("stale_contact",)
            if user.is_automation:
                tags = tags + ("automation",)
        return EmailSpec(
            t=t,
            sender=user.address,
            receiver=receiver,
            spamminess=self._sample_spamminess(rng),
            size_bytes=self._sample_size(rng),
            recipient_count=self._sample_recipient_count(rng),
            tags=tags,
        )

    def _pick_contact(self, user: SenderUser, rng: RandomSource):
        contacts = user.contacts
        if not contacts:
            return None
        if fastpath.enabled():
            entry = self._contact_cum.get(user.address)
            if (
                entry is None
                or entry[0] is not contacts
                or len(entry[1]) != len(contacts)
            ):
                cum = list(accumulate(c.weight for c in contacts))
                entry = (contacts, cum, cum[-1] + 0.0)
                self._contact_cum[user.address] = entry
            return rng.weighted_choice_cum(contacts, entry[1], entry[2])
        weights = [c.weight for c in contacts]
        return rng.weighted_choice(contacts, weights)

    def _apply_typos(self, address: str, rng: RandomSource) -> tuple[str, tuple[str, ...]]:
        config = self.world.config
        user, domain = split_address(address)
        if rng.chance(config.username_typo_rate):
            typo = sample_username_typo(user, rng)
            if typo is not None:
                return f"{typo.text}@{domain}", ("username_typo",)
        if rng.chance(config.domain_typo_rate):
            typo = sample_domain_typo(domain, rng)
            if typo is not None:
                return f"{user}@{typo.text}", ("domain_typo",)
        return address, ()

    @staticmethod
    def _sample_spamminess(rng: RandomSource) -> float:
        """Latent content score: mostly clean, a marketing shoulder, and a
        thin genuinely-spammy tail even among customer mail."""
        roll = rng.random()
        if roll < 0.86:
            return min(max(rng.gauss(0.08, 0.06), 0.0), 1.0)
        if roll < 0.982:
            return min(max(rng.gauss(0.42, 0.14), 0.0), 1.0)
        return min(max(rng.gauss(0.80, 0.10), 0.0), 1.0)

    @staticmethod
    def _sample_size(rng: RandomSource) -> int:
        """Log-normal body of message sizes plus a rare huge-attachment
        slice that exceeds common 25 MiB limits (drives T12)."""
        if rng.chance(0.0008):
            return rng.randint(27_000_000, 65_000_000)
        size = rng.lognormal(42_000, 1.6, cap=20_000_000)
        return max(600, int(size))

    @staticmethod
    def _sample_recipient_count(rng: RandomSource) -> int:
        if rng.chance(0.985):
            return rng.randint(1, 4)
        if rng.chance(0.9):
            return rng.randint(5, 60)
        return rng.randint(61, 400)
