"""Benign traffic generation.

Each email is composed by a sender user picked from the benign population
(automation accounts weighted up), addressed to a contact from their list.
Typed addresses are then corrupted with the paper's user-error rates:
username typos (before @) and domain typos (after @).  Stale contacts are
mailed as stored — including ones at expired domains.

Content: most mail is clean (low latent spamminess); a marketing slice is
borderline; Coremail's outgoing filter flag is applied by the engine.
"""

from __future__ import annotations

from itertools import accumulate
from typing import Iterator

from repro.core import fastpath
from repro.typosquat.generate import sample_domain_typo, sample_username_typo
from repro.util.rng import RandomSource
from repro.util.text import split_address
from repro.workload.schedule import ArrivalSchedule
from repro.workload.spec import EmailSpec
from repro.world.model import WorldModel
from repro.world.senders import SenderUser


class TrafficGenerator:
    """Generates the benign email stream (attacker flows are separate)."""

    def __init__(self, world: WorldModel, rng: RandomSource) -> None:
        self.world = world
        self.rng = rng
        self.schedule = ArrivalSchedule(world.clock, world.config.emails_per_day_scaled)
        self._sender_sampler = world.sender_sampler(rng.child("senders"))
        # Per-user cumulative contact weights (fast path only).  Guarded by
        # the contact list's identity and length so a rebuilt or extended
        # list recomputes the table.
        self._contact_cum: dict[str, tuple[list, list[float], float]] = {}

    def generate(self) -> list[EmailSpec]:
        """The full benign stream across the measurement window, in time
        order within each day."""
        return list(self.iter_specs())

    def day_specs(self, day: int) -> list[EmailSpec]:
        """One day's benign emails, sorted by send time.

        Every random input of a day — times, typos, content, *and* sender
        identities — draws from the day's own named random stream (sender
        picks go through a per-day view of the world's shared popularity
        sampler), so any day can be generated independently of any other.
        That independence is what lets the parallel runtime partition the
        window into day-range slices without perturbing the output.
        """
        out: list[EmailSpec] = []
        day_rng = self.rng.child(f"day/{day}")
        volume = self.schedule.day_volume(day, day_rng)
        sender_sampler = self._sender_sampler.with_rng(day_rng.child("senders"))
        for i in range(volume):
            spec = self._compose(day, day_rng.child(str(i)), sender_sampler)
            if spec is not None:
                out.append(spec)
        out.sort(key=lambda s: s.t)
        return out

    def iter_specs(self) -> Iterator[EmailSpec]:
        """Lazily yield the benign stream in time order, holding at most
        one day's specs in memory.

        Send times never cross day boundaries, so per-day sorted chunks
        concatenate into the exact sequence a global stable sort of the
        whole window would produce.
        """
        return self.iter_day_range(0, self.world.clock.n_days)

    def iter_day_range(self, day_start: int, day_end: int) -> Iterator[EmailSpec]:
        """Lazily yield days ``[day_start, day_end)`` in time order — the
        per-slice entry point of the parallel runtime."""
        for day in range(day_start, day_end):
            yield from self.day_specs(day)

    def _compose(self, day: int, rng: RandomSource, sender_sampler) -> EmailSpec | None:
        user = sender_sampler.draw()
        contact = self._pick_contact(user, rng)
        if contact is None:
            return None
        t = self.schedule.sample_send_time(day, rng)
        receiver, tags = self._apply_typos(contact.address, rng)
        if contact.stale:
            tags = tags + ("stale_contact",)
            if user.is_automation:
                tags = tags + ("automation",)
        return EmailSpec(
            t=t,
            sender=user.address,
            receiver=receiver,
            spamminess=self._sample_spamminess(rng),
            size_bytes=self._sample_size(rng),
            recipient_count=self._sample_recipient_count(rng),
            tags=tags,
        )

    def _pick_contact(self, user: SenderUser, rng: RandomSource):
        contacts = user.contacts
        if not contacts:
            return None
        if fastpath.enabled():
            entry = self._contact_cum.get(user.address)
            if (
                entry is None
                or entry[0] is not contacts
                or len(entry[1]) != len(contacts)
            ):
                cum = list(accumulate(c.weight for c in contacts))
                entry = (contacts, cum, cum[-1] + 0.0)
                self._contact_cum[user.address] = entry
            return rng.weighted_choice_cum(contacts, entry[1], entry[2])
        weights = [c.weight for c in contacts]
        return rng.weighted_choice(contacts, weights)

    def _apply_typos(self, address: str, rng: RandomSource) -> tuple[str, tuple[str, ...]]:
        config = self.world.config
        user, domain = split_address(address)
        if rng.chance(config.username_typo_rate):
            typo = sample_username_typo(user, rng)
            if typo is not None:
                return f"{typo.text}@{domain}", ("username_typo",)
        if rng.chance(config.domain_typo_rate):
            typo = sample_domain_typo(domain, rng)
            if typo is not None:
                return f"{user}@{typo.text}", ("domain_typo",)
        return address, ()

    @staticmethod
    def _sample_spamminess(rng: RandomSource) -> float:
        """Latent content score: mostly clean, a marketing shoulder, and a
        thin genuinely-spammy tail even among customer mail."""
        roll = rng.random()
        if roll < 0.86:
            return min(max(rng.gauss(0.08, 0.06), 0.0), 1.0)
        if roll < 0.982:
            return min(max(rng.gauss(0.42, 0.14), 0.0), 1.0)
        return min(max(rng.gauss(0.80, 0.10), 0.0), 1.0)

    @staticmethod
    def _sample_size(rng: RandomSource) -> int:
        """Log-normal body of message sizes plus a rare huge-attachment
        slice that exceeds common 25 MiB limits (drives T12)."""
        if rng.chance(0.0008):
            return rng.randint(27_000_000, 65_000_000)
        size = rng.lognormal(42_000, 1.6, cap=20_000_000)
        return max(600, int(size))

    @staticmethod
    def _sample_recipient_count(rng: RandomSource) -> int:
        if rng.chance(0.985):
            return rng.randint(1, 4)
        if rng.chance(0.9):
            return rng.randint(5, 60)
        return rng.randint(61, 400)
