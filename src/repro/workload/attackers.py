"""Attacker traffic (Section 4.2.1).

* **Username-guessing campaigns**: an attacker domain targets one victim
  organisation, trying human-plausible username mutations; ~0.9% of
  guesses hit real accounts (which then *receive* spear-phishing mail).
* **Bulk spam**: spammer domains mail recipient lists harvested from
  leaked datasets (>80% of their recipients appear in the breach corpus),
  so most targets are dead addresses and the campaigns bounce hard.
"""

from __future__ import annotations

import heapq
from typing import Iterator

from repro.util.rng import RandomSource
from repro.world.model import WorldModel
from repro.world.senders import SenderDomain, SenderKind
from repro.workload.spec import EmailSpec


class AttackerGenerator:
    def __init__(self, world: WorldModel, rng: RandomSource) -> None:
        self.world = world
        self.rng = rng

    def generate(self) -> list[EmailSpec]:
        return list(self.iter_specs())

    def domain_specs(self, domain: SenderDomain) -> list[EmailSpec]:
        """One attacker domain's full campaign, sorted by send time.

        Each campaign draws only from its own named random stream
        (``child(domain.name)``), so campaigns can be generated in any
        order — or in different processes — without affecting each other.
        """
        stream = self.rng.child(domain.name)
        if domain.kind is SenderKind.GUESSER:
            specs = self._guess_campaign(domain, stream)
        elif domain.kind is SenderKind.BULK_SPAMMER:
            specs = self._spam_campaign(domain, stream)
        else:
            raise ValueError(f"{domain.name} is not an attacker domain")
        specs.sort(key=lambda s: s.t)
        return specs

    def campaign_chunks(self) -> Iterator[list[EmailSpec]]:
        """One sorted spec list per attacker domain, in domain order."""
        for domain in self.world.attacker_domains():
            if domain.kind not in (SenderKind.GUESSER, SenderKind.BULK_SPAMMER):
                continue
            yield self.domain_specs(domain)

    def iter_specs(self) -> Iterator[EmailSpec]:
        """The attacker stream in time order.

        Campaigns span the whole window, so per-domain sorted chunks are
        heap-merged; ``heapq.merge`` is stable across its inputs, which
        makes the sequence identical to concat-then-stable-sort.
        """
        return heapq.merge(*self.campaign_chunks(), key=lambda s: s.t)

    # -- username guessing ------------------------------------------------------

    def _guess_campaign(self, domain: SenderDomain, rng: RandomSource) -> list[EmailSpec]:
        if not domain.guess_target_domain or not domain.guess_candidates:
            return []
        clock = self.world.clock
        sender = domain.users[0].address
        # Campaigns are bursty: a few active spells across the window.
        spells = [
            clock.start_ts + rng.uniform(0.05, 0.9) * (clock.end_ts - clock.start_ts)
            for _ in range(rng.randint(2, 4))
        ]
        out: list[EmailSpec] = []
        for username in domain.guess_candidates:
            start = rng.choice(spells)
            t = start + rng.uniform(0, 5 * 86_400)
            if t >= clock.end_ts:
                t = clock.end_ts - rng.uniform(0, 86_400)
            # Guessed hits get a couple of follow-up phishing mails.
            exists = username in self.world.receiver_domains[domain.guess_target_domain].mailboxes
            copies = rng.randint(2, 6) if exists else 1
            for c in range(copies):
                out.append(
                    EmailSpec(
                        t=min(t + c * rng.uniform(3600, 10 * 86_400), clock.end_ts - 1),
                        sender=sender,
                        receiver=f"{username}@{domain.guess_target_domain}",
                        spamminess=min(max(rng.gauss(0.55, 0.12), 0.0), 1.0),
                        size_bytes=rng.randint(2_000, 40_000),
                        recipient_count=1,
                        tags=("guess_campaign",),
                    )
                )
        return out

    # -- leaked-list bulk spam -------------------------------------------------------

    def _spam_campaign(self, domain: SenderDomain, rng: RandomSource) -> list[EmailSpec]:
        clock = self.world.clock
        volume = domain.campaign_volume
        if volume <= 0:
            return []
        # ≥80% of targets come from the breach corpus (the paper's
        # HaveIBeenPwned flagging criterion), the rest are scraped live
        # addresses.
        n_leaked = int(volume * rng.uniform(0.82, 0.93))
        leaked = self.world.breach.sample_members(rng, n_leaked)
        live_boxes = self._live_addresses(rng, volume - len(leaked))
        targets = leaked + live_boxes
        rng.shuffle(targets)

        out: list[EmailSpec] = []
        senders = [u.address for u in domain.users] or [f"offers@{domain.name}"]
        # Spam runs arrive in waves over a few months.
        wave_starts = [
            clock.start_ts + rng.uniform(0.02, 0.85) * (clock.end_ts - clock.start_ts)
            for _ in range(rng.randint(2, 5))
        ]
        for i, target in enumerate(targets):
            start = wave_starts[i % len(wave_starts)]
            t = min(start + rng.uniform(0, 14 * 86_400), clock.end_ts - 1)
            out.append(
                EmailSpec(
                    t=t,
                    sender=rng.choice(senders),
                    receiver=target,
                    spamminess=min(max(rng.gauss(0.88, 0.07), 0.0), 1.0),
                    size_bytes=rng.randint(1_500, 25_000),
                    recipient_count=rng.randint(1, 3),
                    tags=("bulk_spam",),
                )
            )
        return out

    def _live_addresses(self, rng: RandomSource, k: int) -> list[str]:
        if k <= 0:
            return []
        domains = [d for d in self.world.receiver_domains.values() if d.mailboxes]
        out = []
        for _ in range(k):
            domain = rng.choice(domains)
            username = rng.choice(list(domain.mailboxes.keys()))
            out.append(f"{username}@{domain.name}")
        return out
