"""Arrival schedule.

Reproduces the temporal texture of Figure 5: weekday/weekend cycles
(weekend volume drops sharply — Coremail's senders are companies and
universities), a surge ahead of Chinese New Year 2023 (January 22), mild
long-run growth, and day-level noise.  Within a day, send times follow a
work-hours profile.
"""

from __future__ import annotations

import math

from repro.util.clock import CHINESE_NEW_YEAR_2023, DAY_SECONDS, SimClock
from repro.util.rng import RandomSource

#: Hour-of-day activity profile (work-hours biased, small overnight tail).
_HOUR_WEIGHTS = [
    0.3, 0.2, 0.15, 0.1, 0.1, 0.2, 0.5, 1.2, 2.6, 3.6, 3.8, 3.4,
    2.4, 2.8, 3.5, 3.6, 3.3, 2.8, 1.9, 1.4, 1.2, 1.0, 0.7, 0.5,
]


class ArrivalSchedule:
    def __init__(
        self,
        clock: SimClock,
        emails_per_day: float,
        weekend_factor: float = 0.42,
        growth: float = 0.10,
        cny_surge: float = 0.55,
        noise_sigma: float = 0.07,
    ) -> None:
        self.clock = clock
        self.emails_per_day = emails_per_day
        self.weekend_factor = weekend_factor
        self.growth = growth
        self.cny_surge = cny_surge
        self.noise_sigma = noise_sigma
        total = sum(_HOUR_WEIGHTS)
        self._hour_cdf = []
        acc = 0.0
        for w in _HOUR_WEIGHTS:
            acc += w
            self._hour_cdf.append(acc / total)

    def day_volume(self, day: int, rng: RandomSource) -> int:
        """Number of benign emails sent on window day ``day``."""
        t = self.clock.day_start(day)
        base = self.emails_per_day
        progress = day / max(self.clock.n_days, 1)
        base *= 1.0 + self.growth * progress
        if self.clock.is_weekend(t):
            base *= self.weekend_factor
        base *= self._cny_factor(t)
        base *= math.exp(rng.gauss(0.0, self.noise_sigma))
        return max(0, int(round(base)))

    def _cny_factor(self, t: float) -> float:
        """Surge in the three weeks before Chinese New Year, lull after."""
        days_to_cny = (CHINESE_NEW_YEAR_2023.timestamp() - t) / DAY_SECONDS
        if 0 <= days_to_cny <= 21:
            return 1.0 + self.cny_surge * (1.0 - days_to_cny / 21.0)
        if -7 <= days_to_cny < 0:
            return 0.55
        return 1.0

    def sample_send_time(self, day: int, rng: RandomSource) -> float:
        """A send timestamp within window day ``day``."""
        u = rng.random()
        hour = 0
        for h, edge in enumerate(self._hour_cdf):
            if u <= edge:
                hour = h
                break
        offset = hour * 3600.0 + rng.uniform(0.0, 3600.0)
        return self.clock.day_start(day) + offset

    def total_volume(self, rng: RandomSource) -> int:
        return sum(self.day_volume(d, rng.child(f"day/{d}")) for d in range(self.clock.n_days))
