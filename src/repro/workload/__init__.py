"""Workload generation: who mails whom, when, and with what content.

* :mod:`repro.workload.schedule` — the 15-month arrival schedule with
  weekday/weekend cycles and the Chinese-New-Year surge (Fig 5).
* :mod:`repro.workload.traffic` — benign traffic from contact lists, with
  typo injection and stale-list behaviour.
* :mod:`repro.workload.attackers` — username-guessing campaigns and
  leaked-list bulk spam (Section 4.2.1).
* :mod:`repro.workload.campaigns` — scenario campaign traffic compiled
  from :class:`repro.world.overlay.CampaignOp` entries.
"""

from repro.workload.spec import EmailSpec
from repro.workload.schedule import ArrivalSchedule
from repro.workload.traffic import TrafficGenerator
from repro.workload.campaigns import campaign_workload, scenario_workloads

__all__ = [
    "EmailSpec",
    "ArrivalSchedule",
    "TrafficGenerator",
    "campaign_workload",
    "scenario_workloads",
]
