"""repro.stream — the bounded-memory streaming delivery runtime.

Four pieces, mirroring how an ESP actually operates (records arrive from
proxies continuously; the classifier and the dashboards run online):

* :mod:`repro.stream.runner` — lazy time-ordered simulation
  (:func:`iter_simulation` yields records byte-identical to the batch
  :func:`repro.simulate.run_simulation` without materialising them).
* :mod:`repro.stream.sink` — rotating JSONL/gzip shard writer + reader
  with a checksummed manifest.
* :mod:`repro.stream.online` — :class:`OnlineEBRC`, the EBRC pipeline
  run against a live NDR stream (warm-up fit, per-template
  classification cache, novelty mining, periodic refits).
* :mod:`repro.stream.monitor` — sliding-window deliverability monitors
  (bounce rate, per-type spikes, proxy blocklistings, misconfiguration
  windows) emitting alerts as the stream flows.

CLI entry points: ``repro-bounce stream`` (simulate straight into
shards) and ``repro-bounce watch`` (replay a log through OnlineEBRC +
monitors).
"""

from repro.stream.monitor import (
    Alert,
    BlocklistMonitor,
    BounceRateMonitor,
    BounceTypeMonitor,
    DeliverabilityMonitor,
    MisconfigMonitor,
    RecordClassifier,
    SlidingWindowCounter,
)
from repro.stream.online import OnlineEBRC, OnlineEBRCStats
from repro.stream.runner import (
    StreamingSimulation,
    WorkloadFn,
    iter_chunks,
    iter_simulation,
    merge_spec_streams,
    stream_simulation,
)
from repro.stream.sink import (
    ShardInfo,
    ShardIntegrityError,
    ShardManifest,
    ShardReader,
    ShardWriter,
    iter_delivery_log,
)

__all__ = [
    "Alert",
    "BlocklistMonitor",
    "BounceRateMonitor",
    "BounceTypeMonitor",
    "DeliverabilityMonitor",
    "MisconfigMonitor",
    "OnlineEBRC",
    "OnlineEBRCStats",
    "RecordClassifier",
    "ShardInfo",
    "ShardIntegrityError",
    "ShardManifest",
    "ShardReader",
    "ShardWriter",
    "SlidingWindowCounter",
    "StreamingSimulation",
    "WorkloadFn",
    "iter_chunks",
    "iter_delivery_log",
    "iter_simulation",
    "merge_spec_streams",
    "stream_simulation",
]
