"""Online EBRC: bounce-reason classification over a live NDR stream.

The batch :class:`~repro.core.ebrc.EBRC` wants the whole corpus up front
(cluster, label, train, predict).  :class:`OnlineEBRC` runs the same
pipeline against a stream:

* **Warm-up** — the first ``warmup`` NDR lines are buffered; when the
  buffer fills (or :meth:`finalize` is called) a batch EBRC is fitted on
  it and the buffered messages' classifications are flushed in order.
* **Steady state** — each later message is routed through the *fitted*
  Drain tree non-destructively and classified once per template id: the
  first message of a template pays the full classification, every other
  hit is a dict lookup.  This mirrors how the paper classifies 190M NDRs
  against ~10K templates.
* **Novelty tracking** — messages the fitted tree cannot place are
  classified individually (exactly as batch ``EBRC.classify`` does) *and*
  mined into a separate incremental Drain, so the share of genuinely new
  template structures is observable (:attr:`novel_fraction`).
* **Refit hooks** — ``refit_interval`` triggers a periodic refit on the
  most recent ``refit_window`` messages; ``on_refit`` is called after
  every (re)fit so a monitoring service can snapshot/persist the model.

Because steady-state classification reads the fitted model without
mutating it, replaying a log through ``OnlineEBRC`` (with refits off)
produces classifications identical to fitting a batch EBRC on the warm-up
prefix and calling ``classify_many`` on the whole log.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.core.drain import Drain
from repro.core.ebrc import EBRC, EBRCConfig
from repro.core.labeling import is_ambiguous_text
from repro.core.taxonomy import BounceType
from repro.obs import metrics as obs_metrics


@dataclass
class OnlineEBRCStats:
    """Counters a monitoring service would export."""

    n_seen: int = 0
    n_flushed: int = 0
    n_cache_hits: int = 0
    n_unmatched: int = 0
    n_fits: int = 0
    n_failed_refits: int = 0

    @property
    def cache_hit_rate(self) -> float:
        classified = self.n_flushed
        return self.n_cache_hits / classified if classified else 0.0


class OnlineEBRC:
    """Streaming wrapper around the batch EBRC pipeline."""

    def __init__(
        self,
        config: EBRCConfig | None = None,
        warmup: int = 2000,
        refit_interval: int | None = None,
        refit_window: int = 20_000,
        on_refit: Callable[["OnlineEBRC"], None] | None = None,
    ) -> None:
        if warmup < 1:
            raise ValueError("warmup must be >= 1")
        if refit_interval is not None and refit_interval < 1:
            raise ValueError("refit_interval must be >= 1")
        self.config = config or EBRCConfig()
        self.warmup = warmup
        self.refit_interval = refit_interval
        self.on_refit = on_refit
        self.ebrc: EBRC | None = None
        self.stats = OnlineEBRCStats()
        #: template id -> classification, valid for the current fit.
        self._cache: dict[int, BounceType | None] = {}
        self._buffer: list[str] = []
        #: bounded recent-message window the next refit trains on.
        self._recent: deque[str] = deque(maxlen=refit_window)
        #: incremental miner for structures the fitted tree doesn't know.
        self.novel_drain = self._fresh_drain()
        self._since_refit = 0
        # Telemetry (no-op unless repro.obs is enabled at construction);
        # mirrors the OnlineEBRCStats counters a scraper cares about.
        self._obs_on = obs_metrics.enabled()
        self._m_observed = obs_metrics.counter(
            "repro_online_messages_total",
            "NDR lines fed to the online classifier, by disposition",
            label="disposition",
        )
        self._m_refits = obs_metrics.counter(
            "repro_online_refits_total",
            "Online EBRC (re)fits, by outcome",
            label="outcome",
        )
        self._m_templates = obs_metrics.gauge(
            "repro_online_templates",
            "Templates known to the currently fitted online model",
        )

    def _fresh_drain(self) -> Drain:
        return Drain(
            depth=self.config.drain_depth,
            sim_threshold=self.config.drain_sim_threshold,
        )

    # -- state ----------------------------------------------------------------

    @property
    def fitted(self) -> bool:
        return self.ebrc is not None

    @property
    def n_templates(self) -> int:
        return self.ebrc.n_templates if self.fitted else 0

    @property
    def n_novel_templates(self) -> int:
        return len(self.novel_drain.templates)

    @property
    def novel_fraction(self) -> float:
        """Share of post-fit messages the fitted tree could not place."""
        classified = self.stats.n_flushed
        return self.stats.n_unmatched / classified if classified else 0.0

    # -- streaming API ---------------------------------------------------------

    def observe(self, message: str) -> list[BounceType | None]:
        """Feed one NDR line; returns the classifications that became
        available: ``[]`` while warming up, the whole warm-up batch when the
        buffer fills, one entry per message afterwards."""
        self.stats.n_seen += 1
        self._recent.append(message)
        if not self.fitted:
            self._buffer.append(message)
            if len(self._buffer) >= self.warmup:
                return self._fit_and_flush()
            return []
        result = [self._classify_one(message)]
        self.stats.n_flushed += 1
        self._since_refit += 1
        if self.refit_interval is not None and self._since_refit >= self.refit_interval:
            self.refit()
        return result

    def classify_stream(
        self, messages: Iterable[str]
    ) -> Iterator[BounceType | None]:
        """Classify a message stream; yields one result per input message,
        in input order (warm-up results are yielded as soon as the model
        fits, then the stream runs incrementally).  Finalizes at the end,
        so short streams that never fill the warm-up buffer still fit."""
        for message in messages:
            yield from self.observe(message)
        yield from self.finalize()

    def finalize(self) -> list[BounceType | None]:
        """Flush a partially-filled warm-up buffer (end of stream)."""
        if not self.fitted and self._buffer:
            return self._fit_and_flush()
        return []

    # -- fitting ----------------------------------------------------------------

    def _fit_and_flush(self) -> list[BounceType | None]:
        ebrc = EBRC(self.config)
        ebrc.fit(list(self._buffer))
        self.ebrc = ebrc
        self._cache = {}
        self.novel_drain = self._fresh_drain()
        self.stats.n_fits += 1
        if self._obs_on:
            self._m_refits.labels("ok").inc()
            self._m_templates.set(ebrc.n_templates)
        flushed = [self._classify_one(m) for m in self._buffer]
        self.stats.n_flushed += len(flushed)
        self._buffer = []
        self._since_refit = 0
        if self.on_refit is not None:
            self.on_refit(self)
        return flushed

    def refit(self) -> bool:
        """Refit on the recent-message window; returns True on success.

        A window too uniform to train on (fewer than two labelled types)
        keeps the current model and counts a failed refit instead of
        killing the stream.
        """
        messages = list(self._recent)
        if not messages:
            return False
        ebrc = EBRC(self.config)
        try:
            ebrc.fit(messages)
        except ValueError:
            self.stats.n_failed_refits += 1
            self._since_refit = 0
            if self._obs_on:
                self._m_refits.labels("failed").inc()
            return False
        self.ebrc = ebrc
        self._cache = {}
        self.novel_drain = self._fresh_drain()
        self.stats.n_fits += 1
        self._since_refit = 0
        if self._obs_on:
            self._m_refits.labels("ok").inc()
            self._m_templates.set(ebrc.n_templates)
        if self.on_refit is not None:
            self.on_refit(self)
        return True

    # -- classification -----------------------------------------------------------

    def _classify_one(self, message: str) -> BounceType | None:
        ebrc = self.ebrc
        template = ebrc.drain.match(message)
        if template is None:
            # Unseen structure: mine it incrementally, classify the raw
            # text exactly as the batch path would.
            self.stats.n_unmatched += 1
            if self._obs_on:
                self._m_observed.labels("novel").inc()
            self.novel_drain.add(message)
            if is_ambiguous_text(message):
                return None
            predicted = ebrc.classifier.predict(
                ebrc.vectorizer.transform([message])
            )[0]
            return BounceType(predicted)
        tid = template.template_id
        if tid in self._cache:
            self.stats.n_cache_hits += 1
            if self._obs_on:
                self._m_observed.labels("cache-hit").inc()
            return self._cache[tid]
        if self._obs_on:
            self._m_observed.labels("template-miss").inc()
        # The batch pipeline precomputes template labels at fit time;
        # reuse that table instead of re-deriving the label here.  The
        # local cache (and with it the hit-rate stats) is still warmed
        # one template at a time, exactly as before.
        result = ebrc.template_label(tid)
        self._cache[tid] = result
        return result
