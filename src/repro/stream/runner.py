"""Streaming simulation runner.

The batch runner (:func:`repro.simulate.run_simulation`) materialises every
:class:`~repro.workload.spec.EmailSpec` and every
:class:`~repro.delivery.records.DeliveryRecord` before anything downstream
runs.  This module is the bounded-memory alternative: the world is built
once, the workload is decomposed into independent **slices** (see
:mod:`repro.parallel.partition`), and each slice's delivery records are
lazily k-way merged back into one time-ordered stream.

The slice discipline is what makes the record sequence *canonical* — the
same for the in-process runner here and for
:func:`repro.parallel.run_parallel_simulation` at any worker count:

* every slice's spec stream is yielded pre-sorted by send time (benign
  traffic one day at a time, attacker campaigns per domain),
* every random stream is a *named* child of the run seed
  (:meth:`repro.util.rng.RandomSource.child`) — per-day generation
  streams, per-campaign streams, and a per-slice delivery engine seeded
  from ``child(f"engine/{slice.key}")`` — so no slice's randomness
  depends on any other slice, on generation order, or on which process
  runs it,
* ``heapq.merge`` is stable across its input iterables, which makes a
  merge of sorted streams equal to concat-then-stable-sort; merging
  per-slice record streams in slice-plan order therefore fixes the order
  of simultaneous records once, for every execution strategy.

Peak memory is O(one day of specs per traffic slice + attacker campaigns
+ the world), never O(total records).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from itertools import chain
from operator import attrgetter
from typing import Callable, Iterable, Iterator

from repro.delivery.engine import DeliveryEngine
from repro.delivery.records import DeliveryRecord
from repro.obs import profile as obs_profile
from repro.parallel.partition import SimSlice, plan_slices
from repro.util.rng import RandomSource
from repro.workload.attackers import AttackerGenerator
from repro.workload.spec import EmailSpec
from repro.workload.traffic import TrafficGenerator
from repro.world.config import SimulationConfig
from repro.world.model import WorldModel, build_world

#: A pluggable workload: receives the built world and a dedicated random
#: stream, returns extra EmailSpecs to deliver alongside the built-ins.
WorkloadFn = Callable[[WorldModel, RandomSource], Iterable[EmailSpec]]


def materialize_extra_workloads(
    world: WorldModel,
    rng: RandomSource,
    extra_workloads: list[WorkloadFn] | None,
) -> list[list[EmailSpec]]:
    """Run every extra workload eagerly, validate, and sort.

    Extra workloads must stay inside the measurement window, so a bad
    workload raises before any delivery happens — same contract as the
    batch path.  Each gets its own named stream (``extra/<i>``).
    """
    out: list[list[EmailSpec]] = []
    for i, workload in enumerate(extra_workloads or []):
        extra = list(workload(world, rng.child(f"extra/{i}")))
        for spec in extra:
            if not world.clock.contains(spec.t):
                raise ValueError(
                    f"extra workload {i} produced a spec outside the "
                    f"measurement window (t={spec.t})"
                )
        extra.sort(key=lambda s: s.t)
        out.append(extra)
    return out


def merge_spec_streams(
    world: WorldModel,
    rng: RandomSource,
    extra_workloads: list[WorkloadFn] | None = None,
) -> Iterator[EmailSpec]:
    """Lazily merge all workload streams into one time-ordered spec stream
    (the spec-level view; delivery uses the per-slice streams below)."""
    traffic = TrafficGenerator(world, rng.child("traffic"))
    attackers = AttackerGenerator(world, rng.child("attackers"))
    streams: list[Iterator[EmailSpec]] = [
        traffic.iter_specs(),
        attackers.iter_specs(),
    ]
    streams.extend(
        iter(extra)
        for extra in materialize_extra_workloads(world, rng, extra_workloads)
    )
    return heapq.merge(*streams, key=attrgetter("t"))


def iter_slice_specs(
    world: WorldModel,
    rng: RandomSource,
    sim_slice: SimSlice,
    extra_specs: list[list[EmailSpec]] | None = None,
) -> Iterator[EmailSpec]:
    """One slice's spec stream, sorted by send time.

    ``rng`` is the run-level stream (``RandomSource(seed, name="sim")``);
    the per-kind child streams derived here are exactly the ones the
    serial generators use, so slice-wise generation reproduces the serial
    spec sequence slice by slice.
    """
    if sim_slice.kind == "traffic":
        traffic = TrafficGenerator(world, rng.child("traffic"))
        yield from traffic.iter_day_range(sim_slice.day_start, sim_slice.day_end)
        return
    if sim_slice.kind == "campaign":
        attackers = AttackerGenerator(world, rng.child("attackers"))
        domains = world.attacker_domains()
        if not 0 <= sim_slice.campaign_index < len(domains):
            raise ValueError(
                f"slice {sim_slice.key}: campaign index out of range "
                f"(world has {len(domains)} attacker domains)"
            )
        yield from attackers.domain_specs(domains[sim_slice.campaign_index])
        return
    # extra: shipped specs (workers) or the parent's materialised lists.
    if sim_slice.specs is not None:
        yield from sim_slice.specs
        return
    if extra_specs is None or not 0 <= sim_slice.extra_index < len(extra_specs):
        raise ValueError(f"slice {sim_slice.key}: extra workload specs unavailable")
    yield from extra_specs[sim_slice.extra_index]


def run_slice(
    world: WorldModel,
    rng: RandomSource,
    sim_slice: SimSlice,
    extra_specs: list[list[EmailSpec]] | None = None,
) -> Iterator[DeliveryRecord]:
    """Deliver one slice with a fresh, slice-seeded engine.

    The engine stream is ``child(f"engine/{slice.key}")``, so delivery
    randomness (proxy picks, retry gaps, NDR renderings) is a pure
    function of the run seed and the slice — independent of every other
    slice and of the process running it.
    """
    specs = obs_profile.profiled_iter(
        "workload-gen", iter_slice_specs(world, rng, sim_slice, extra_specs)
    )
    engine = DeliveryEngine(world, rng.child(f"engine/{sim_slice.key}"))
    return engine.deliver_all(specs)


def merge_record_streams(
    streams: Iterable[Iterator[DeliveryRecord]],
) -> Iterator[DeliveryRecord]:
    """Stable k-way merge of per-slice record streams by start time.

    Records inside a slice are already time-ordered (specs are sorted and
    ``start_time`` is the spec's send time), and ``heapq.merge``'s
    stability resolves cross-slice ties by input position — which is why
    every consumer must pass streams in slice-plan order.
    """
    streams = list(streams)
    if len(streams) == 1:
        return iter(streams[0])
    return heapq.merge(*streams, key=attrgetter("start_time"))


@dataclass
class StreamingSimulation:
    """A running streaming simulation: the built world plus a lazy record
    iterator.  Iterate it (once) to drive delivery."""

    world: WorldModel
    records: Iterator[DeliveryRecord]

    @property
    def config(self) -> SimulationConfig:
        return self.world.config

    def __iter__(self) -> Iterator[DeliveryRecord]:
        return self.records


def stream_simulation(
    config: SimulationConfig | None = None,
    extra_workloads: list[WorkloadFn] | None = None,
) -> StreamingSimulation:
    """Build the world and return a lazy, time-ordered record stream."""
    config = config or SimulationConfig()
    with obs_profile.stage("world-build"):
        world = build_world(config)
    rng = RandomSource(config.seed, name="sim")
    extra_specs = materialize_extra_workloads(world, rng, extra_workloads)
    slices = plan_slices(config, n_extra=len(extra_specs))
    # Traffic slices are contiguous, disjoint day ranges at the head of
    # the plan, so their record streams concatenate into one sorted
    # stream: chaining them keeps the k-way heap at (1 + campaigns +
    # extras) streams instead of one per day range.  Order is untouched —
    # cross-slice ties are impossible between day-disjoint traffic
    # slices, and the chain keeps the traffic stream in merge position 0,
    # which is exactly where stability would resolve its ties anyway.
    streams: list[Iterator[DeliveryRecord]] = []
    traffic: list[Iterator[DeliveryRecord]] = []
    for s in slices:
        stream = run_slice(world, rng, s, extra_specs)
        if s.kind == "traffic":
            traffic.append(stream)
        else:
            streams.append(stream)
    if traffic:
        head = chain.from_iterable(traffic) if len(traffic) > 1 else traffic[0]
        streams.insert(0, head)
    records = merge_record_streams(streams)
    return StreamingSimulation(world=world, records=records)


def iter_simulation(
    config: SimulationConfig | None = None,
    extra_workloads: list[WorkloadFn] | None = None,
) -> Iterator[DeliveryRecord]:
    """Yield delivery records incrementally, byte-identical (same JSON, same
    order) to ``run_simulation(config).dataset`` for the same seed."""
    return stream_simulation(config, extra_workloads).records


def iter_chunks(
    records: Iterable[DeliveryRecord], size: int
) -> Iterator[list[DeliveryRecord]]:
    """Group a record stream into lists of at most ``size`` records."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    chunk: list[DeliveryRecord] = []
    for record in records:
        chunk.append(record)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
