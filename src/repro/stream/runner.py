"""Streaming simulation runner.

The batch runner (:func:`repro.simulate.run_simulation`) materialises every
:class:`~repro.workload.spec.EmailSpec` and every
:class:`~repro.delivery.records.DeliveryRecord` before anything downstream
runs.  This module is the bounded-memory alternative: the world is built
once, the workload generators are *lazily* heap-merged in time order, and
delivery records are yielded one at a time.

Output equivalence is exact, not approximate: for the same config (and
extra workloads) the record sequence is byte-identical to the batch path,
because

* each workload stream is yielded pre-sorted by send time (the benign
  generator one day at a time, attacker campaigns per domain),
* ``heapq.merge`` is stable across its input iterables, which makes a
  merge of sorted streams equal to concat-then-stable-sort, and
* every random stream is a *named* child of the run seed
  (:meth:`repro.util.rng.RandomSource.child`), so generation order cannot
  perturb any other consumer's randomness.

Peak memory is O(one day of specs + attacker campaigns + the world), never
O(total records).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.delivery.engine import DeliveryEngine
from repro.delivery.records import DeliveryRecord
from repro.obs import profile as obs_profile
from repro.util.rng import RandomSource
from repro.workload.attackers import AttackerGenerator
from repro.workload.spec import EmailSpec
from repro.workload.traffic import TrafficGenerator
from repro.world.config import SimulationConfig
from repro.world.model import WorldModel, build_world

#: A pluggable workload: receives the built world and a dedicated random
#: stream, returns extra EmailSpecs to deliver alongside the built-ins.
WorkloadFn = Callable[[WorldModel, RandomSource], Iterable[EmailSpec]]


def merge_spec_streams(
    world: WorldModel,
    rng: RandomSource,
    extra_workloads: list[WorkloadFn] | None = None,
) -> Iterator[EmailSpec]:
    """Lazily merge all workload streams into one time-ordered spec stream.

    Extra workloads are materialised and validated *eagerly* (they must stay
    inside the measurement window), so a bad workload raises before any
    delivery happens — same contract as the batch path.
    """
    traffic = TrafficGenerator(world, rng.child("traffic"))
    attackers = AttackerGenerator(world, rng.child("attackers"))
    streams: list[Iterator[EmailSpec]] = [
        traffic.iter_specs(),
        attackers.iter_specs(),
    ]
    for i, workload in enumerate(extra_workloads or []):
        extra = list(workload(world, rng.child(f"extra/{i}")))
        for spec in extra:
            if not world.clock.contains(spec.t):
                raise ValueError(
                    f"extra workload {i} produced a spec outside the "
                    f"measurement window (t={spec.t})"
                )
        extra.sort(key=lambda s: s.t)
        streams.append(iter(extra))
    return heapq.merge(*streams, key=lambda s: s.t)


@dataclass
class StreamingSimulation:
    """A running streaming simulation: the built world plus a lazy record
    iterator.  Iterate it (once) to drive delivery."""

    world: WorldModel
    records: Iterator[DeliveryRecord]

    @property
    def config(self) -> SimulationConfig:
        return self.world.config

    def __iter__(self) -> Iterator[DeliveryRecord]:
        return self.records


def stream_simulation(
    config: SimulationConfig | None = None,
    extra_workloads: list[WorkloadFn] | None = None,
) -> StreamingSimulation:
    """Build the world and return a lazy, time-ordered record stream."""
    config = config or SimulationConfig()
    with obs_profile.stage("world-build"):
        world = build_world(config)
    rng = RandomSource(config.seed, name="sim")
    specs = obs_profile.profiled_iter(
        "workload-gen", merge_spec_streams(world, rng, extra_workloads)
    )
    engine = DeliveryEngine(world, rng.child("engine"))
    return StreamingSimulation(world=world, records=engine.deliver_all(specs))


def iter_simulation(
    config: SimulationConfig | None = None,
    extra_workloads: list[WorkloadFn] | None = None,
) -> Iterator[DeliveryRecord]:
    """Yield delivery records incrementally, byte-identical (same JSON, same
    order) to ``run_simulation(config).dataset`` for the same seed."""
    return stream_simulation(config, extra_workloads).records


def iter_chunks(
    records: Iterable[DeliveryRecord], size: int
) -> Iterator[list[DeliveryRecord]]:
    """Group a record stream into lists of at most ``size`` records."""
    if size < 1:
        raise ValueError("chunk size must be >= 1")
    chunk: list[DeliveryRecord] = []
    for record in records:
        chunk.append(record)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk
