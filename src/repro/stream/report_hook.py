"""Periodic live-table snapshots for replay streams.

``repro watch --report-every N`` feeds every replayed record through a
:class:`PeriodicTableReporter`: a :class:`~repro.analytics.TableSuite`
that re-renders the paper tables every N records.  Because the suite is
the same accumulator set ``repro report`` folds over a saved log, the
*last* snapshot of a complete replay is byte-identical to the batch
report of the same log — the live view converges on the paper's tables
instead of approximating them.
"""

from __future__ import annotations

from repro.analytics.render import render_report
from repro.analytics.suite import TableSuite
from repro.delivery.records import DeliveryRecord
from repro.util.clock import SimClock

__all__ = ["PeriodicTableReporter"]


class PeriodicTableReporter:
    """Fold records into a live :class:`TableSuite`, emitting a rendered
    report every ``every`` records (``feed`` returns ``None`` otherwise)."""

    def __init__(
        self,
        every: int = 10_000,
        *,
        top: int = 10,
        clock: SimClock | None = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = every
        self.top = top
        self.suite = TableSuite(clock if clock is not None else SimClock())

    @property
    def n_records(self) -> int:
        return self.suite.n_records

    def render(self) -> str:
        """The current tables, rendered exactly like ``repro report``."""
        return render_report(self.suite.tables(self.top), self.top)

    def feed(self, record: DeliveryRecord) -> str | None:
        """Observe one record; return the rendered report on every
        ``every``-th record, ``None`` in between."""
        self.suite.observe(record)
        if self.suite.n_records % self.every == 0:
            return self.render()
        return None

    def final(self) -> str | None:
        """The end-of-stream report, unless ``feed`` just emitted it."""
        if self.suite.n_records == 0 or self.suite.n_records % self.every == 0:
            return None
        return self.render()
