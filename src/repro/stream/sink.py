"""Sharded delivery-log storage.

A :class:`ShardWriter` splits a record stream into rotating JSONL shards
(optionally gzip-compressed) and writes a ``manifest.json`` describing
them — record counts, start-time ranges, payload checksums — so analyses
can plan shard-by-shard passes (or skip shards entirely by time range)
without reading every byte.

Checksums cover the *uncompressed* JSONL payload, not the file bytes:
gzip embeds a modification time, so file-level hashes of identical data
would differ between runs.

A :class:`ShardReader` iterates a shard directory back in order, with
optional checksum verification, shard-level time filtering, and the same
record type the batch :class:`~repro.delivery.dataset.DeliveryDataset`
uses — ``DeliveryDataset.read_jsonl`` and a shard round-trip agree.

Durability contract (docs/ROBUSTNESS.md): manifests are written
atomically (temp file + fsync + ``os.replace``); a writer that exits
abnormally records its progress in ``manifest.partial.json`` and never
finalises ``manifest.json``; and :func:`recover_shards` salvages a
crashed directory by truncating torn trailing data and re-hashing what
survived.  :mod:`repro.faults` hooks into the write path for chaos
testing.
"""

from __future__ import annotations

import gzip
import hashlib
import heapq
import itertools
import json
import os
from dataclasses import dataclass
from pathlib import Path
from time import perf_counter
from typing import Iterable, Iterator

from repro import faults
from repro.delivery.records import DeliveryRecord
from repro.obs import metrics as obs_metrics
from repro.obs import profile as obs_profile

MANIFEST_NAME = "manifest.json"
#: Written on abnormal writer exit (and by :func:`recover_shards`): the
#: directory is detectably incomplete but its progress is recorded.
PARTIAL_MANIFEST_NAME = "manifest.partial.json"
MANIFEST_VERSION = 1


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Durably replace ``path`` with ``text``: write a sibling temp file,
    fsync it, then ``os.replace`` (atomic on POSIX) and fsync the
    directory.  A crash at any point leaves either the old file or the
    new one — never a torn half-write."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_bytes(path: str | Path, payload: bytes) -> Path:
    """Binary flavour of :func:`atomic_write_text` (same durability
    discipline); checkpoint world snapshots are written through this."""
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return path
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return path


class ShardIntegrityError(RuntimeError):
    """A shard's payload does not match its manifest checksum."""


class ShardDecodeError(ShardIntegrityError):
    """A shard line is not a decodable delivery record (torn write or
    on-disk corruption); the message names the file and record index."""


@dataclass(frozen=True)
class ShardInfo:
    """Manifest entry for one shard file."""

    name: str
    n_records: int
    t_min: float
    t_max: float
    sha256: str

    def to_json_dict(self) -> dict:
        return {
            "name": self.name,
            "n_records": self.n_records,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "sha256": self.sha256,
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ShardInfo":
        return cls(
            name=data["name"],
            n_records=int(data["n_records"]),
            t_min=float(data["t_min"]),
            t_max=float(data["t_max"]),
            sha256=data["sha256"],
        )


@dataclass
class ShardManifest:
    """The directory-level index of a sharded delivery log."""

    shards: list[ShardInfo]
    compression: str = "none"  # "none" | "gzip"
    version: int = MANIFEST_VERSION
    #: Optional producer identity (config hash + slice key + shard
    #: options); the resume machinery uses it to decide whether a slice
    #: directory on disk belongs to the run being resumed.
    fingerprint: str | None = None

    @property
    def n_records(self) -> int:
        return sum(s.n_records for s in self.shards)

    @property
    def t_min(self) -> float | None:
        starts = [s.t_min for s in self.shards if s.n_records]
        return min(starts) if starts else None

    @property
    def t_max(self) -> float | None:
        ends = [s.t_max for s in self.shards if s.n_records]
        return max(ends) if ends else None

    def to_json_dict(self) -> dict:
        data = {
            "version": self.version,
            "compression": self.compression,
            "n_records": self.n_records,
            "shards": [s.to_json_dict() for s in self.shards],
        }
        if self.fingerprint is not None:
            data["fingerprint"] = self.fingerprint
        return data

    @classmethod
    def from_json_dict(cls, data: dict) -> "ShardManifest":
        return cls(
            shards=[ShardInfo.from_json_dict(s) for s in data["shards"]],
            compression=data.get("compression", "none"),
            version=int(data.get("version", MANIFEST_VERSION)),
            fingerprint=data.get("fingerprint"),
        )

    def save(self, directory: str | Path) -> Path:
        # Atomic + fsync'd: a crash mid-save must never leave a torn
        # manifest.json that makes the whole directory unreadable.
        return atomic_write_text(
            Path(directory) / MANIFEST_NAME,
            json.dumps(self.to_json_dict(), indent=2) + "\n",
        )

    @classmethod
    def load(cls, directory: str | Path) -> "ShardManifest":
        path = Path(directory) / MANIFEST_NAME
        return cls.from_json_dict(json.loads(path.read_text(encoding="utf-8")))


class ShardWriter:
    """Rotating shard writer; usable as a context manager.

    ::

        with ShardWriter(out_dir, shard_size=50_000, compress=True) as w:
            for record in iter_simulation(config):
                w.write(record)
        manifest = w.manifest
    """

    def __init__(
        self,
        directory: str | Path,
        shard_size: int = 100_000,
        compress: bool = False,
        prefix: str = "shard",
        fingerprint: str | None = None,
    ) -> None:
        if shard_size < 1:
            raise ValueError("shard_size must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.shard_size = shard_size
        self.compress = compress
        self.prefix = prefix
        self.fingerprint = fingerprint
        # Chaos hooks (None outside fault-injection runs; cached once so
        # the write path pays a single attribute check).
        self._fault_plan = faults.active_plan()
        self._shards: list[ShardInfo] = []
        self._fh = None
        self._hash = None
        self._shard_count = 0
        self._shard_t_min = 0.0
        self._shard_t_max = 0.0
        self._closed = False
        self.manifest: ShardManifest | None = None
        # Telemetry (no-op unless repro.obs is enabled at construction).
        self._obs_on = obs_metrics.enabled()
        self._m_records = obs_metrics.counter(
            "repro_shard_records_total", "Delivery records written to shards"
        )
        self._m_bytes = obs_metrics.counter(
            "repro_shard_bytes_total", "Uncompressed JSONL bytes written to shards"
        )
        self._m_shards = obs_metrics.counter(
            "repro_shards_total", "Shard files finalised"
        )

    # -- writing ---------------------------------------------------------------

    @property
    def n_written(self) -> int:
        return sum(s.n_records for s in self._shards) + self._shard_count

    def _shard_name(self, index: int) -> str:
        suffix = ".jsonl.gz" if self.compress else ".jsonl"
        return f"{self.prefix}-{index:05d}{suffix}"

    def _open_shard(self) -> None:
        name = self._shard_name(len(self._shards))
        path = self.directory / name
        if self.compress:
            self._fh = gzip.open(path, "wt", encoding="utf-8")
        else:
            self._fh = path.open("w", encoding="utf-8")
        self._hash = hashlib.sha256()
        self._shard_count = 0

    def _close_shard(self) -> None:
        if self._fh is None:
            return
        self._fh.close()
        name = self._shard_name(len(self._shards))
        self._shards.append(
            ShardInfo(
                name=name,
                n_records=self._shard_count,
                t_min=self._shard_t_min,
                t_max=self._shard_t_max,
                sha256=self._hash.hexdigest(),
            )
        )
        self._fh = None
        self._hash = None
        # Reset so ``n_written`` never double-counts the shard that was
        # just folded into ``_shards`` (it previously did between a
        # rotation and the next write, and after close()).
        self._shard_count = 0
        if self._obs_on:
            self._m_shards.inc()
        if self._fault_plan is not None:
            # Bit-rot injection happens after hashing, so the manifest
            # checksum records the true payload and verification catches
            # the corruption.
            self._fault_plan.on_shard_close(self.directory / name)

    def write(self, record: DeliveryRecord) -> None:
        if self._closed:
            raise RuntimeError("writer is closed")
        if not self._obs_on:
            self._write_impl(record)
            return
        t0 = perf_counter()
        self._write_impl(record)
        obs_profile.add("shard-io", perf_counter() - t0)

    def _write_impl(self, record: DeliveryRecord) -> None:
        if self._fault_plan is not None:
            self._fault_plan.on_shard_write(str(self.directory), self.n_written + 1)
        if self._fh is None:
            self._open_shard()
        line = record.to_json() + "\n"
        self._fh.write(line)
        payload = line.encode("utf-8")
        self._hash.update(payload)
        if self._obs_on:
            self._m_records.inc()
            self._m_bytes.inc(len(payload))
        t = record.start_time
        if self._shard_count == 0:
            self._shard_t_min = t
            self._shard_t_max = t
        else:
            self._shard_t_min = min(self._shard_t_min, t)
            self._shard_t_max = max(self._shard_t_max, t)
        self._shard_count += 1
        if self._shard_count >= self.shard_size:
            self._close_shard()

    def write_all(self, records) -> int:
        n = 0
        for record in records:
            self.write(record)
            n += 1
        return n

    def close(self) -> ShardManifest:
        """Flush the open shard and write the manifest."""
        if self._closed:
            return self.manifest
        self._close_shard()
        self._closed = True
        self.manifest = ShardManifest(
            shards=self._shards,
            compression="gzip" if self.compress else "none",
            fingerprint=self.fingerprint,
        )
        self.manifest.save(self.directory)
        # A clean finalise supersedes any earlier partial state (ours, a
        # previous crashed run's, or recover_shards' salvage record).
        (self.directory / PARTIAL_MANIFEST_NAME).unlink(missing_ok=True)
        return self.manifest

    def abort(self) -> None:
        """Abnormal-exit path: close the open shard file and record the
        progress made in ``manifest.partial.json`` — never the final
        manifest, so a crashed producer stays distinguishable from a
        complete one."""
        if self._closed:
            return
        open_shard = None
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:  # pragma: no cover - best effort
                pass
            open_shard = {
                "name": self._shard_name(len(self._shards)),
                "n_records": self._shard_count,
                "t_min": self._shard_t_min,
                "t_max": self._shard_t_max,
                # What the producer *handed* the writer; the file tail may
                # hold less (buffering), which recover_shards detects.
                "sha256": self._hash.hexdigest(),
            }
            self._fh = None
            self._hash = None
        self._closed = True
        partial = {
            "version": MANIFEST_VERSION,
            "compression": "gzip" if self.compress else "none",
            "complete_shards": [s.to_json_dict() for s in self._shards],
            "open_shard": open_shard,
        }
        if self.fingerprint is not None:
            partial["fingerprint"] = self.fingerprint
        try:
            atomic_write_text(
                self.directory / PARTIAL_MANIFEST_NAME,
                json.dumps(partial, indent=2) + "\n",
            )
        except OSError:  # pragma: no cover - must not mask the original error
            pass

    def __enter__(self) -> "ShardWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        # Only a clean exit finalises the manifest; on an exception the
        # directory is left manifest-less (detectably incomplete).
        if exc_type is None:
            self.close()
        else:
            self.abort()


class ShardReader:
    """Reads a sharded delivery log back, shard by shard, in write order."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.manifest = ShardManifest.load(self.directory)

    def __len__(self) -> int:
        return self.manifest.n_records

    def _open(self, info: ShardInfo):
        path = self.directory / info.name
        if self.manifest.compression == "gzip":
            return gzip.open(path, "rt", encoding="utf-8")
        return path.open("r", encoding="utf-8")

    def iter_lines(self, info: ShardInfo, verify: bool = False) -> Iterator[str]:
        digest = hashlib.sha256() if verify else None
        with self._open(info) as fh:
            for line in fh:
                if digest is not None:
                    digest.update(line.encode("utf-8"))
                line = line.strip()
                if line:
                    yield line
        if digest is not None and digest.hexdigest() != info.sha256:
            raise ShardIntegrityError(
                f"shard {info.name}: payload checksum mismatch "
                f"(expected {info.sha256}, got {digest.hexdigest()})"
            )

    def iter_shard(self, info: ShardInfo, verify: bool = False) -> Iterator[DeliveryRecord]:
        for n, line in enumerate(self.iter_lines(info, verify=verify), 1):
            try:
                yield DeliveryRecord.from_json(line)
            except (ValueError, KeyError, TypeError) as exc:
                raise ShardDecodeError(
                    f"{self.directory / info.name}: record {n}: undecodable "
                    f"line ({exc.__class__.__name__}: {exc}); if the "
                    f"producing run crashed mid-write, "
                    f"repro.stream.sink.recover_shards() can salvage the "
                    f"directory"
                ) from exc

    def iter_records(
        self,
        verify: bool = False,
        t_min: float | None = None,
        t_max: float | None = None,
    ) -> Iterator[DeliveryRecord]:
        """All records in order; ``t_min``/``t_max`` skip whole shards whose
        manifest time range falls outside the filter, then filter records."""
        for info in self.manifest.shards:
            if t_min is not None and info.t_max < t_min:
                continue
            if t_max is not None and info.t_min > t_max:
                continue
            for record in self.iter_shard(info, verify=verify):
                if t_min is not None and record.start_time < t_min:
                    continue
                if t_max is not None and record.start_time > t_max:
                    continue
                yield record

    def __iter__(self) -> Iterator[DeliveryRecord]:
        return self.iter_records()

    def verify(self) -> None:
        """Re-hash every shard against the manifest; raises on mismatch."""
        for info in self.manifest.shards:
            for _ in self.iter_lines(info, verify=True):
                pass


class MultiShardReader:
    """Reads several shard directories (each with its own manifest) as one
    delivery log — the per-worker outputs of a parallel run, or any set of
    runs a caller wants to analyse together.

    ``order="concat"`` yields each directory fully before the next, in the
    given directory order.  ``order="time"`` k-way merges the directories
    by record start time; the merge is stable across directories (ties
    resolve by directory position), which is exactly the discipline the
    parallel runtime's canonical merge relies on.  Integrity checking
    (``verify=True``) re-hashes every shard payload against its manifest,
    same as :class:`ShardReader`.
    """

    def __init__(
        self,
        directories: Iterable[str | Path],
        order: str = "concat",
    ) -> None:
        if order not in ("concat", "time"):
            raise ValueError(f"unknown order {order!r} (use 'concat' or 'time')")
        self.directories = [Path(d) for d in directories]
        if not self.directories:
            raise ValueError("need at least one shard directory")
        self.order = order
        self.readers = [ShardReader(d) for d in self.directories]

    @property
    def n_records(self) -> int:
        return sum(len(r) for r in self.readers)

    def __len__(self) -> int:
        return self.n_records

    @property
    def t_min(self) -> float | None:
        starts = [r.manifest.t_min for r in self.readers if r.manifest.t_min is not None]
        return min(starts) if starts else None

    @property
    def t_max(self) -> float | None:
        ends = [r.manifest.t_max for r in self.readers if r.manifest.t_max is not None]
        return max(ends) if ends else None

    def iter_records(
        self,
        verify: bool = False,
        t_min: float | None = None,
        t_max: float | None = None,
    ) -> Iterator[DeliveryRecord]:
        streams = (
            reader.iter_records(verify=verify, t_min=t_min, t_max=t_max)
            for reader in self.readers
        )
        if self.order == "time":
            return heapq.merge(*streams, key=lambda record: record.start_time)
        return itertools.chain.from_iterable(streams)

    def __iter__(self) -> Iterator[DeliveryRecord]:
        return self.iter_records()

    def verify(self) -> None:
        """Re-hash every shard of every directory; raises on mismatch."""
        for reader in self.readers:
            reader.verify()


def iter_delivery_log(path: str | Path) -> Iterator[DeliveryRecord]:
    """Records from either a shard directory (with manifest) or a plain
    JSONL/JSONL.gz file — whatever ``repro-bounce watch`` is pointed at."""
    from repro.delivery.dataset import DeliveryDataset

    path = Path(path)
    if path.is_dir():
        return ShardReader(path).iter_records()
    return DeliveryDataset.iter_jsonl(path)


# -- crash recovery ------------------------------------------------------------------


@dataclass(frozen=True)
class SalvagedShard:
    """The outcome of salvaging one shard file."""

    name: str
    n_records: int
    #: Torn/undecodable trailing lines dropped from the file.
    n_dropped_lines: int
    #: True when the file was rewritten (something was truncated, or a
    #: torn gzip stream was re-encoded).
    rewritten: bool
    sha256: str
    t_min: float
    t_max: float

    def to_info(self) -> ShardInfo:
        return ShardInfo(
            name=self.name,
            n_records=self.n_records,
            t_min=self.t_min,
            t_max=self.t_max,
            sha256=self.sha256,
        )


@dataclass
class RecoveryReport:
    """What :func:`recover_shards` found (and fixed) in a directory."""

    directory: Path
    shards: list[SalvagedShard]
    #: The directory already had a valid final manifest; nothing was done.
    already_complete: bool = False
    #: A final manifest was written for the salvaged shards.
    finalized: bool = False

    @property
    def n_records(self) -> int:
        return sum(s.n_records for s in self.shards)

    @property
    def n_dropped_lines(self) -> int:
        return sum(s.n_dropped_lines for s in self.shards)

    @property
    def torn(self) -> bool:
        return any(s.rewritten for s in self.shards)


def _salvage_payload(path: Path, compressed: bool) -> tuple[bytes, bool]:
    """The decodable payload prefix of a shard file, plus whether the
    byte stream itself was torn (truncated gzip)."""
    raw = path.read_bytes()
    if not compressed:
        return raw, False
    import zlib

    out = bytearray()
    torn = False
    decoder = zlib.decompressobj(wbits=31)
    try:
        for i in range(0, len(raw), 1 << 16):
            out += decoder.decompress(raw[i : i + (1 << 16)])
        out += decoder.flush()
        if not decoder.eof:
            torn = True  # stream ended mid-member (killed producer)
    except zlib.error:
        torn = True  # corrupt tail; keep the decodable prefix
    return bytes(out), torn


def _salvage_shard(path: Path) -> SalvagedShard:
    """Validate one shard file line by line, truncating a torn tail.

    A *trailing* run of undecodable bytes — an unterminated final line, a
    half-flushed gzip member, garbage after a kill — is dropped and the
    file rewritten in place (atomically).  The salvaged payload is
    re-hashed so the returned checksum matches what a reader will see.
    """
    compressed = path.name.endswith(".gz")
    payload, stream_torn = _salvage_payload(path, compressed)
    lines = payload.split(b"\n")
    tail = lines.pop()  # b"" for a cleanly terminated file
    kept: list[bytes] = []
    n_dropped = 1 if tail else 0
    times: list[float] = []
    for i, line in enumerate(lines):
        try:
            record = DeliveryRecord.from_json(line.decode("utf-8"))
        except (UnicodeDecodeError, ValueError, KeyError, TypeError):
            # Keep only the clean prefix: everything from the first
            # undecodable line on is part of the torn tail.
            n_dropped += len(lines) - i
            break
        kept.append(line)
        times.append(record.start_time)

    digest = hashlib.sha256()
    for line in kept:
        digest.update(line + b"\n")
    rewritten = n_dropped > 0 or stream_torn
    if rewritten:
        tmp = path.with_name(path.name + ".tmp")
        if compressed:
            with gzip.open(tmp, "wb") as fh:
                for line in kept:
                    fh.write(line + b"\n")
        else:
            tmp.write_bytes(b"".join(line + b"\n" for line in kept))
        os.replace(tmp, path)
    return SalvagedShard(
        name=path.name,
        n_records=len(kept),
        n_dropped_lines=n_dropped,
        rewritten=rewritten,
        sha256=digest.hexdigest(),
        t_min=min(times) if times else 0.0,
        t_max=max(times) if times else 0.0,
    )


def recover_shards(directory: str | Path, finalize: bool = False) -> RecoveryReport:
    """Salvage a shard directory whose producer exited abnormally.

    Scans every shard file, truncates torn trailing data (an interrupted
    JSONL line, a half-flushed gzip stream), re-hashes the salvaged
    payload, and records the result in ``manifest.partial.json`` — the
    directory becomes readable again while staying detectably incomplete.
    An unreadable (torn, pre-atomic-writer) ``manifest.json`` is treated
    the same way: discarded and rebuilt from the files on disk.

    ``finalize=True`` instead writes a **final** ``manifest.json`` for
    the salvaged shards — an explicit declaration that the partial data
    is acceptable as-is.  The finalized manifest carries no fingerprint,
    so the resume machinery still treats the slice as incomplete and
    re-runs it rather than trusting salvaged data.

    A directory whose final manifest loads cleanly is returned untouched
    (``already_complete=True``).
    """
    directory = Path(directory)
    manifest_path = directory / MANIFEST_NAME
    if manifest_path.exists():
        try:
            ShardManifest.load(directory)
            return RecoveryReport(directory, [], already_complete=True)
        except (OSError, ValueError, KeyError):
            manifest_path.unlink()  # torn manifest; rebuild from the shards
    shard_files = sorted(
        p for p in directory.iterdir()
        if p.name.endswith(".jsonl") or p.name.endswith(".jsonl.gz")
    )
    shards = [_salvage_shard(path) for path in shard_files]
    compression = (
        "gzip" if any(s.name.endswith(".gz") for s in shards) else "none"
    )
    report = RecoveryReport(directory, shards, finalized=finalize)
    if finalize:
        ShardManifest(
            shards=[s.to_info() for s in shards], compression=compression
        ).save(directory)
        (directory / PARTIAL_MANIFEST_NAME).unlink(missing_ok=True)
    else:
        atomic_write_text(
            directory / PARTIAL_MANIFEST_NAME,
            json.dumps(
                {
                    "version": MANIFEST_VERSION,
                    "compression": compression,
                    "complete_shards": [s.to_info().to_json_dict() for s in shards],
                    "open_shard": None,
                    "recovered": True,
                    "n_dropped_lines": report.n_dropped_lines,
                },
                indent=2,
            )
            + "\n",
        )
    obs_metrics.counter(
        "repro_shard_recoveries_total",
        "Shard directories salvaged by recover_shards",
    ).inc()
    return report
