"""Live deliverability monitoring over a delivery-record stream.

The paper's §4.2.2 reputation findings (Coremail proxies blocklisted on
half the observed days) and §4.3 misconfiguration windows are batch
analyses over the finished 15-month log.  This module runs the same
questions *online*: records arrive in time order, sliding windows of
bucketed counters track recent behaviour in bounded memory, and monitors
emit :class:`Alert` objects on rising edges (and clears on falling
edges) instead of end-of-run tables.

Monitors consume ``(record, bounce_type)`` pairs — the type of the
record's first failed attempt, as produced by a labeler or the
:class:`~repro.stream.online.OnlineEBRC` (``None`` for delivered-first-try
records and ambiguous NDRs).  :class:`RecordClassifier` pairs a raw
record stream with online classifications while preserving record order.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.core.taxonomy import BounceType
from repro.delivery.records import DeliveryRecord
from repro.obs import metrics as obs_metrics
from repro.stream.online import OnlineEBRC
from repro.util.clock import DAY_SECONDS, SimClock


@dataclass(frozen=True)
class Alert:
    """One monitoring event."""

    t: float
    kind: str  # "bounce-rate" | "bounce-type" | "blocklist" | "misconfig"
    subject: str  # the entity concerned ("stream", a type, a proxy IP, a domain)
    message: str
    severity: str = "warning"  # "info" | "warning" | "critical"
    cleared: bool = False

    def render(self, clock: SimClock | None = None) -> str:
        stamp = clock.format_ts(self.t) if clock else f"t={self.t:.0f}"
        marker = "CLEAR" if self.cleared else self.severity.upper()
        return f"[{stamp}] {marker:8s} {self.kind}({self.subject}): {self.message}"


class SlidingWindowCounter:
    """Keyed counts over a sliding time window, bucketed for eviction.

    Memory is O(active buckets x active keys); totals are O(1) via a
    running aggregate that eviction decrements.
    """

    def __init__(self, window_s: float, bucket_s: float | None = None) -> None:
        if window_s <= 0:
            raise ValueError("window_s must be positive")
        self.window_s = window_s
        self.bucket_s = bucket_s or max(window_s / 24.0, 1.0)
        self._buckets: deque[tuple[int, Counter]] = deque()
        self._total: Counter = Counter()

    def _bucket_index(self, t: float) -> int:
        return int(t // self.bucket_s)

    def advance(self, t: float) -> None:
        """Evict buckets that have slid out of the window ending at ``t``."""
        horizon = self._bucket_index(t - self.window_s)
        while self._buckets and self._buckets[0][0] <= horizon:
            _, counts = self._buckets.popleft()
            self._total.subtract(counts)
        # keep the aggregate sparse
        if self._total and not self._buckets:
            self._total = Counter()

    def add(self, t: float, key: str = "", n: int = 1) -> None:
        self.advance(t)
        index = self._bucket_index(t)
        if not self._buckets or self._buckets[-1][0] != index:
            self._buckets.append((index, Counter()))
        self._buckets[-1][1][key] += n
        self._total[key] += n

    def count(self, key: str = "") -> int:
        return self._total.get(key, 0)

    def counts(self) -> Counter:
        return Counter({k: v for k, v in self._total.items() if v > 0})

    def total(self) -> int:
        return sum(v for v in self._total.values() if v > 0)


class BounceRateMonitor:
    """Alerts when the windowed first-attempt bounce rate crosses a
    threshold (and clears when it recovers)."""

    def __init__(
        self,
        window_s: float = 2 * DAY_SECONDS,
        threshold: float = 0.35,
        min_volume: int = 200,
    ) -> None:
        self.threshold = threshold
        self.min_volume = min_volume
        self._window = SlidingWindowCounter(window_s)
        self._active = False

    def rate(self) -> float:
        total = self._window.count("emails")
        return self._window.count("bounced") / total if total else 0.0

    def observe(self, record: DeliveryRecord, bounce_type: BounceType | None) -> list[Alert]:
        t = record.start_time
        self._window.add(t, "emails")
        if record.bounced:
            self._window.add(t, "bounced")
        volume = self._window.count("emails")
        rate = self.rate()
        # Clears are NOT gated on min_volume: a window that slides empty
        # (rate falls to 0 over 0 emails) must still emit the falling edge,
        # or an alert raised before a quiet spell would stay active forever.
        if self._active and rate < self.threshold * 0.8:
            self._active = False
            return [Alert(
                t=t, kind="bounce-rate", subject="stream",
                message=f"bounce rate recovered to {rate:.1%}",
                severity="info", cleared=True,
            )]
        if volume < self.min_volume:
            return []
        if not self._active and rate >= self.threshold:
            self._active = True
            return [Alert(
                t=t, kind="bounce-rate", subject="stream",
                message=f"windowed bounce rate {rate:.1%} over "
                        f"{volume:,} emails (threshold {self.threshold:.0%})",
                severity="critical",
            )]
        return []


class BounceTypeMonitor:
    """Per-bounce-type share spikes within the bounced population."""

    def __init__(
        self,
        window_s: float = 2 * DAY_SECONDS,
        share_threshold: float = 0.40,
        min_count: int = 50,
        watch: Iterable[BounceType] | None = None,
    ) -> None:
        self.share_threshold = share_threshold
        self.min_count = min_count
        self.watch = set(watch) if watch is not None else None
        self._window = SlidingWindowCounter(window_s)
        self._active: set[str] = set()

    def observe(self, record: DeliveryRecord, bounce_type: BounceType | None) -> list[Alert]:
        t = record.start_time
        if bounce_type is None or (
            self.watch is not None and bounce_type not in self.watch
        ):
            # Still advance time and re-check falling edges: a stretch of
            # clean (or unwatched) traffic can slide the whole window out,
            # and the spike's clear must fire then, not at the next bounce.
            self._window.advance(t)
            return self._falling_edges(t)
        self._window.add(t, bounce_type.value)
        counts = self._window.counts()
        total = sum(counts.values())
        alerts: list[Alert] = []
        for value, n in counts.items():
            share = n / total if total else 0.0
            if (n >= self.min_count and share >= self.share_threshold
                    and value not in self._active):
                self._active.add(value)
                alerts.append(Alert(
                    t=t, kind="bounce-type", subject=value,
                    message=f"{value} ({BounceType(value).description}) is "
                            f"{share:.0%} of {total:,} windowed bounces",
                ))
        alerts.extend(self._falling_edges(t))
        return alerts

    def _falling_edges(self, t: float) -> list[Alert]:
        """Clear active spikes that have dropped below the hysteresis band
        (including to zero, when the window empties entirely)."""
        counts = self._window.counts()
        total = sum(counts.values())
        still_high: set[str] = set()
        for value, n in counts.items():
            share = n / total if total else 0.0
            if n >= self.min_count and share >= self.share_threshold * 0.8:
                still_high.add(value)
        alerts: list[Alert] = []
        for value in sorted(self._active - still_high):
            self._active.discard(value)
            alerts.append(Alert(
                t=t, kind="bounce-type", subject=value,
                message=f"{value} spike subsided",
                severity="info", cleared=True,
            ))
        return alerts


class BlocklistMonitor:
    """The §4.2.2 reputation report, live: watches blocklist/greylist
    rejections (T5) per sending proxy IP and alerts when a proxy appears
    to be listed."""

    def __init__(
        self,
        window_s: float = 1 * DAY_SECONDS,
        min_rejections: int = 10,
    ) -> None:
        self.min_rejections = min_rejections
        self._window = SlidingWindowCounter(window_s)
        self._active: set[str] = set()

    def observe(self, record: DeliveryRecord, bounce_type: BounceType | None) -> list[Alert]:
        t = record.start_time
        self._window.advance(t)
        if bounce_type is BounceType.T5:
            failure = record.first_failure()
            if failure is not None and failure.from_ip:
                self._window.add(t, failure.from_ip)
        counts = self._window.counts()
        alerts: list[Alert] = []
        for ip, n in counts.items():
            if n >= self.min_rejections and ip not in self._active:
                self._active.add(ip)
                alerts.append(Alert(
                    t=t, kind="blocklist", subject=ip,
                    message=f"proxy {ip} drew {n} blocklist rejections in "
                            f"the last {self._window.window_s / 3600:.0f}h — "
                            f"likely DNSBL-listed",
                    severity="critical",
                ))
        for ip in sorted(self._active):
            if counts.get(ip, 0) == 0:
                self._active.discard(ip)
                alerts.append(Alert(
                    t=t, kind="blocklist", subject=ip,
                    message=f"proxy {ip} no longer drawing blocklist rejections",
                    severity="info", cleared=True,
                ))
        return alerts

    @property
    def listed_proxies(self) -> set[str]:
        return set(self._active)


@dataclass
class _Episode:
    start: float
    last: float
    n_bounces: int = 1
    alerted: bool = False


class MisconfigMonitor:
    """Online misconfiguration-window detection (the streaming analogue of
    :mod:`repro.analysis.misconfig`).

    Tracks one entity per configured bounce type — receiver domains for T2
    (broken MX), sender domains for T3 (DKIM/SPF) — and opens an episode
    once ``min_bounces`` errors land within ``gap_s`` of each other.  A
    successful delivery for the entity confirms the fix and clears the
    episode; a quiet gap expires it unconfirmed.
    """

    #: bounce type -> how to key the affected entity.
    DEFAULT_WATCH = {
        BounceType.T2: "receiver_domain",
        BounceType.T3: "sender_domain",
    }

    def __init__(
        self,
        gap_s: float = 4 * DAY_SECONDS,
        min_bounces: int = 3,
        watch: dict[BounceType, str] | None = None,
    ) -> None:
        self.gap_s = gap_s
        self.min_bounces = min_bounces
        self.watch = dict(watch) if watch is not None else dict(self.DEFAULT_WATCH)
        #: (type value, entity) -> open episode
        self._episodes: dict[tuple[str, str], _Episode] = {}

    def _entity(self, record: DeliveryRecord, bounce_type: BounceType) -> str:
        return getattr(record, self.watch[bounce_type])

    def _expire(self, t: float) -> list[Alert]:
        alerts: list[Alert] = []
        for key, ep in list(self._episodes.items()):
            if t - ep.last > self.gap_s:
                if ep.alerted:
                    value, entity = key
                    alerts.append(Alert(
                        t=t, kind="misconfig", subject=entity,
                        message=f"{value} errors quiet for "
                                f"{(t - ep.last) / DAY_SECONDS:.1f} days "
                                f"(episode unconfirmed, "
                                f"{ep.n_bounces} bounces since start)",
                        severity="info", cleared=True,
                    ))
                del self._episodes[key]
        return alerts

    def observe(self, record: DeliveryRecord, bounce_type: BounceType | None) -> list[Alert]:
        t = record.start_time
        alerts = self._expire(t)
        # A success confirms the fix for any open episode on that entity.
        if record.delivered:
            for value, attr in ((bt.value, a) for bt, a in self.watch.items()):
                key = (value, getattr(record, attr))
                ep = self._episodes.pop(key, None)
                if ep is not None and ep.alerted:
                    alerts.append(Alert(
                        t=t, kind="misconfig", subject=key[1],
                        message=f"{value} episode fixed after "
                                f"{(t - ep.start) / DAY_SECONDS:.1f} days "
                                f"({ep.n_bounces} bounces)",
                        severity="info", cleared=True,
                    ))
            return alerts
        if bounce_type is None or bounce_type not in self.watch:
            return alerts
        entity = self._entity(record, bounce_type)
        key = (bounce_type.value, entity)
        ep = self._episodes.get(key)
        if ep is None:
            self._episodes[key] = _Episode(start=t, last=t)
            return alerts
        ep.last = t
        ep.n_bounces += 1
        if not ep.alerted and ep.n_bounces >= self.min_bounces:
            ep.alerted = True
            alerts.append(Alert(
                t=t, kind="misconfig", subject=entity,
                message=f"{bounce_type.value} "
                        f"({bounce_type.description}) misconfiguration "
                        f"window open since "
                        f"{(t - ep.start) / DAY_SECONDS:.1f} days ago "
                        f"({ep.n_bounces} bounces)",
            ))
        return alerts

    @property
    def open_episodes(self) -> dict[tuple[str, str], tuple[float, int]]:
        return {k: (ep.start, ep.n_bounces) for k, ep in self._episodes.items()}


class RecordClassifier:
    """Pairs a record stream with classifications, preserving order.

    Classifications for bounced records come from an online classifier
    whose warm-up delays results; records are queued until their type is
    known, then released in arrival order.  Non-bounced records carry
    ``None`` and ride along in sequence.
    """

    def __init__(self, online: OnlineEBRC) -> None:
        self.online = online
        self._pending: deque[tuple[DeliveryRecord, bool]] = deque()
        self._types: deque[BounceType | None] = deque()

    def _drain(self) -> list[tuple[DeliveryRecord, BounceType | None]]:
        out: list[tuple[DeliveryRecord, BounceType | None]] = []
        while self._pending:
            record, has_failure = self._pending[0]
            if has_failure:
                if not self._types:
                    break
                out.append((record, self._types.popleft()))
            else:
                out.append((record, None))
            self._pending.popleft()
        return out

    def feed(self, record: DeliveryRecord) -> list[tuple[DeliveryRecord, BounceType | None]]:
        failure = record.first_failure()
        self._pending.append((record, failure is not None))
        if failure is not None:
            self._types.extend(self.online.observe(failure.result))
        return self._drain()

    def finalize(self) -> list[tuple[DeliveryRecord, BounceType | None]]:
        self._types.extend(self.online.finalize())
        return self._drain()


class DeliverabilityMonitor:
    """The composed live monitoring service: bounce rate, per-type spikes,
    proxy blocklistings, and misconfiguration windows over one stream."""

    def __init__(
        self,
        bounce_rate: BounceRateMonitor | None = None,
        bounce_types: BounceTypeMonitor | None = None,
        blocklist: BlocklistMonitor | None = None,
        misconfig: MisconfigMonitor | None = None,
    ) -> None:
        self.monitors = [
            bounce_rate if bounce_rate is not None else BounceRateMonitor(),
            bounce_types if bounce_types is not None else BounceTypeMonitor(),
            blocklist if blocklist is not None else BlocklistMonitor(),
            misconfig if misconfig is not None else MisconfigMonitor(),
        ]
        self.n_records = 0
        self.n_bounced = 0
        self.alert_counts: Counter = Counter()
        # Telemetry (no-op unless repro.obs is enabled at construction).
        self._obs_on = obs_metrics.enabled()
        self._m_records = obs_metrics.counter(
            "repro_monitor_records_total",
            "Delivery records observed by the deliverability monitor",
        )
        self._m_alerts = obs_metrics.counter(
            "repro_monitor_alerts_total",
            "Monitoring events emitted, by kind (clears carry a .clear suffix)",
            label="kind",
        )

    def observe(
        self, record: DeliveryRecord, bounce_type: BounceType | None
    ) -> list[Alert]:
        self.n_records += 1
        if record.bounced:
            self.n_bounced += 1
        alerts: list[Alert] = []
        for monitor in self.monitors:
            alerts.extend(monitor.observe(record, bounce_type))
        for alert in alerts:
            if not alert.cleared:
                self.alert_counts[alert.kind] += 1
        if self._obs_on:
            self._m_records.inc()
            for alert in alerts:
                kind = alert.kind + (".clear" if alert.cleared else "")
                self._m_alerts.labels(kind).inc()
        return alerts

    def watch(
        self, pairs: Iterable[tuple[DeliveryRecord, BounceType | None]]
    ) -> Iterator[Alert]:
        for record, bounce_type in pairs:
            yield from self.observe(record, bounce_type)

    def summary(self) -> str:
        parts = [
            f"records={self.n_records:,}",
            f"bounced={self.n_bounced:,}",
        ]
        for kind in sorted(self.alert_counts):
            parts.append(f"{kind}-alerts={self.alert_counts[kind]}")
        return " ".join(parts)
